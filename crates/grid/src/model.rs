//! Material parameter models for the three wave propagators.
//!
//! The paper benchmarks "velocity models of 512³ grid points" (§IV.B). We
//! provide the parameter volumes each propagator consumes:
//!
//! * [`Model`] — isotropic acoustic: velocity `c`, squared slowness `m = 1/c²`.
//! * [`TtiModel`] — pseudo-acoustic TTI: `c` plus Thomsen anisotropy
//!   parameters `ε`, `δ` and the tilt/azimuth angles `θ`, `φ` (§III-B).
//! * [`ElasticModel`] — isotropic elastic: P/S velocities and density, stored
//!   as the Lamé parameters `λ`, `μ` and buoyancy `1/ρ` (§III-C).
//!
//! Builders cover homogeneous media, horizontally layered media (the standard
//! seismic benchmark configuration) and seeded random perturbations (to keep
//! the compiler from constant-folding a uniform medium in benchmarks).

use crate::array::Array3;
use crate::domain::Domain;
use crate::shape::Shape;
use crate::rng::Rng64;

/// Isotropic acoustic material model.
#[derive(Debug, Clone)]
pub struct Model {
    domain: Domain,
    /// Squared slowness `m = 1/c²` in s²/m², the coefficient of `∂²u/∂t²`.
    pub m: Array3<f32>,
    vmax: f32,
}

impl Model {
    /// Homogeneous medium with velocity `c` (m/s).
    pub fn homogeneous(domain: Domain, c: f32) -> Self {
        assert!(c > 0.0, "velocity must be positive");
        let s = domain.shape();
        Model {
            domain,
            m: Array3::full(s.nx, s.ny, s.nz, 1.0 / (c * c)),
            vmax: c,
        }
    }

    /// Horizontally layered medium: velocity `c_top` above depth fraction
    /// `interface` (along z), `c_bottom` below.
    pub fn two_layer(domain: Domain, c_top: f32, c_bottom: f32, interface: f32) -> Self {
        assert!(c_top > 0.0 && c_bottom > 0.0);
        assert!((0.0..=1.0).contains(&interface));
        let s = domain.shape();
        let zi = ((s.nz as f32) * interface) as usize;
        let mut m = Array3::zeros(s.nx, s.ny, s.nz);
        for (x, y, z) in s.iter() {
            let c = if z < zi { c_top } else { c_bottom };
            m.set(x, y, z, 1.0 / (c * c));
        }
        Model {
            domain,
            m,
            vmax: c_top.max(c_bottom),
        }
    }

    /// Random velocity field in `[c_min, c_max]` with a fixed seed.
    pub fn random(domain: Domain, c_min: f32, c_max: f32, seed: u64) -> Self {
        assert!(0.0 < c_min && c_min <= c_max);
        let s = domain.shape();
        let mut rng = Rng64::new(seed);
        let mut m = Array3::zeros(s.nx, s.ny, s.nz);
        for v in m.as_mut_slice() {
            let c: f32 = rng.range_f32(c_min, c_max);
            *v = 1.0 / (c * c);
        }
        Model {
            domain,
            m,
            vmax: c_max,
        }
    }

    /// The physical domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.domain.shape()
    }

    /// Maximum velocity (enters the CFL bound).
    pub fn vmax(&self) -> f32 {
        self.vmax
    }
}

/// Anisotropic acoustic (TTI) material model.
#[derive(Debug, Clone)]
pub struct TtiModel {
    domain: Domain,
    /// Squared slowness along the symmetry axis.
    pub m: Array3<f32>,
    /// Thomsen epsilon (P-wave anisotropy strength).
    pub epsilon: Array3<f32>,
    /// Thomsen delta (near-vertical anisotropy).
    pub delta: Array3<f32>,
    /// Tilt angle θ (radians, rotation about y).
    pub theta: Array3<f32>,
    /// Azimuth angle φ (radians, rotation about z).
    pub phi: Array3<f32>,
    vmax: f32,
}

impl TtiModel {
    /// Homogeneous TTI medium with constant Thomsen parameters and angles.
    pub fn homogeneous(domain: Domain, c: f32, epsilon: f32, delta: f32, theta: f32, phi: f32) -> Self {
        assert!(c > 0.0);
        let s = domain.shape();
        let n = (s.nx, s.ny, s.nz);
        // The effective horizontal velocity is c·sqrt(1+2ε); it bounds dt.
        let vmax = c * (1.0 + 2.0 * epsilon.max(0.0)).sqrt();
        TtiModel {
            domain,
            m: Array3::full(n.0, n.1, n.2, 1.0 / (c * c)),
            epsilon: Array3::full(n.0, n.1, n.2, epsilon),
            delta: Array3::full(n.0, n.1, n.2, delta),
            theta: Array3::full(n.0, n.1, n.2, theta),
            phi: Array3::full(n.0, n.1, n.2, phi),
            vmax,
        }
    }

    /// Randomly perturbed TTI medium (velocity in `[c_min, c_max]`, smoothly
    /// bounded Thomsen parameters, random but physical angles).
    pub fn random(domain: Domain, c_min: f32, c_max: f32, seed: u64) -> Self {
        assert!(0.0 < c_min && c_min <= c_max);
        let s = domain.shape();
        let mut rng = Rng64::new(seed);
        let n = (s.nx, s.ny, s.nz);
        let mut m = Array3::zeros(n.0, n.1, n.2);
        let mut epsilon = Array3::zeros(n.0, n.1, n.2);
        let mut delta = Array3::zeros(n.0, n.1, n.2);
        let mut theta = Array3::zeros(n.0, n.1, n.2);
        let mut phi = Array3::zeros(n.0, n.1, n.2);
        let mut emax = 0.0f32;
        for i in 0..m.len() {
            let c: f32 = rng.range_f32(c_min, c_max);
            m.as_mut_slice()[i] = 1.0 / (c * c);
            let e: f32 = rng.range_f32(0.0, 0.3);
            emax = emax.max(e);
            epsilon.as_mut_slice()[i] = e;
            delta.as_mut_slice()[i] = rng.range_f32(0.0, e.max(1e-6));
            theta.as_mut_slice()[i] = rng.range_f32(-0.5, 0.5);
            phi.as_mut_slice()[i] = rng.range_f32(-0.5, 0.5);
        }
        let vmax = c_max * (1.0 + 2.0 * emax).sqrt();
        TtiModel {
            domain,
            m,
            epsilon,
            delta,
            theta,
            phi,
            vmax,
        }
    }

    /// The physical domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.domain.shape()
    }

    /// Maximum effective velocity (for CFL).
    pub fn vmax(&self) -> f32 {
        self.vmax
    }
}

/// Isotropic elastic material model (velocity–stress formulation).
#[derive(Debug, Clone)]
pub struct ElasticModel {
    domain: Domain,
    /// First Lamé parameter λ (Pa).
    pub lam: Array3<f32>,
    /// Shear modulus μ (Pa).
    pub mu: Array3<f32>,
    /// Buoyancy `1/ρ` (m³/kg) — multiplies the velocity update.
    pub buoyancy: Array3<f32>,
    vp_max: f32,
}

impl ElasticModel {
    /// Homogeneous medium from P velocity, S velocity and density.
    ///
    /// `μ = ρ·vs²`, `λ = ρ·vp² − 2μ`.
    pub fn homogeneous(domain: Domain, vp: f32, vs: f32, rho: f32) -> Self {
        assert!(vp > 0.0 && vs >= 0.0 && rho > 0.0);
        assert!(
            vs * (2.0f32).sqrt() < vp,
            "need vs < vp/sqrt(2) for positive lambda"
        );
        let s = domain.shape();
        let mu = rho * vs * vs;
        let lam = rho * vp * vp - 2.0 * mu;
        ElasticModel {
            domain,
            lam: Array3::full(s.nx, s.ny, s.nz, lam),
            mu: Array3::full(s.nx, s.ny, s.nz, mu),
            buoyancy: Array3::full(s.nx, s.ny, s.nz, 1.0 / rho),
            vp_max: vp,
        }
    }

    /// Random elastic medium with `vp ∈ [vp_min, vp_max]`, a fixed
    /// `vp/vs = 2` ratio and densities in `[2000, 2600]` kg/m³.
    pub fn random(domain: Domain, vp_min: f32, vp_max: f32, seed: u64) -> Self {
        assert!(0.0 < vp_min && vp_min <= vp_max);
        let s = domain.shape();
        let mut rng = Rng64::new(seed);
        let n = (s.nx, s.ny, s.nz);
        let mut lam = Array3::zeros(n.0, n.1, n.2);
        let mut mu = Array3::zeros(n.0, n.1, n.2);
        let mut b = Array3::zeros(n.0, n.1, n.2);
        for i in 0..lam.len() {
            let vp: f32 = rng.range_f32(vp_min, vp_max);
            let vs = vp / 2.0;
            let rho: f32 = rng.range_f32(2000.0, 2600.0);
            let mu_v = rho * vs * vs;
            lam.as_mut_slice()[i] = rho * vp * vp - 2.0 * mu_v;
            mu.as_mut_slice()[i] = mu_v;
            b.as_mut_slice()[i] = 1.0 / rho;
        }
        ElasticModel {
            domain,
            lam,
            mu,
            buoyancy: b,
            vp_max,
        }
    }

    /// The physical domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.domain.shape()
    }

    /// Maximum P velocity (for CFL).
    pub fn vp_max(&self) -> f32 {
        self.vp_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: usize) -> Domain {
        Domain::uniform(Shape::cube(n), 10.0)
    }

    #[test]
    fn homogeneous_model_m_is_inverse_square() {
        let m = Model::homogeneous(dom(4), 2000.0);
        let expect = 1.0 / (2000.0f32 * 2000.0);
        assert_eq!(m.m.get(2, 2, 2), expect);
        assert_eq!(m.vmax(), 2000.0);
    }

    #[test]
    fn two_layer_interface_position() {
        let m = Model::two_layer(dom(10), 1500.0, 3000.0, 0.5);
        let m_top = 1.0 / (1500.0f32 * 1500.0);
        let m_bot = 1.0 / (3000.0f32 * 3000.0);
        assert_eq!(m.m.get(0, 0, 0), m_top);
        assert_eq!(m.m.get(0, 0, 4), m_top);
        assert_eq!(m.m.get(0, 0, 5), m_bot);
        assert_eq!(m.m.get(0, 0, 9), m_bot);
        assert_eq!(m.vmax(), 3000.0);
    }

    #[test]
    fn random_model_within_bounds_and_deterministic() {
        let a = Model::random(dom(6), 1500.0, 4500.0, 42);
        let b = Model::random(dom(6), 1500.0, 4500.0, 42);
        assert!(a.m.bit_equal(&b.m), "same seed must reproduce");
        let m_lo = 1.0 / (4500.0f32 * 4500.0);
        let m_hi = 1.0 / (1500.0f32 * 1500.0);
        for &v in a.m.as_slice() {
            assert!(v >= m_lo * 0.999 && v <= m_hi * 1.001);
        }
        let c = Model::random(dom(6), 1500.0, 4500.0, 43);
        assert!(!a.m.bit_equal(&c.m), "different seed must differ");
    }

    #[test]
    fn tti_vmax_includes_epsilon() {
        let t = TtiModel::homogeneous(dom(4), 2000.0, 0.24, 0.1, 0.3, 0.1);
        let expect = 2000.0 * (1.0f32 + 0.48).sqrt();
        assert!((t.vmax() - expect).abs() < 1e-3);
    }

    #[test]
    fn tti_random_parameters_physical() {
        let t = TtiModel::random(dom(5), 1500.0, 3500.0, 7);
        for i in 0..t.epsilon.len() {
            let e = t.epsilon.as_slice()[i];
            let d = t.delta.as_slice()[i];
            assert!((0.0..0.3).contains(&e));
            assert!(d >= 0.0 && d <= e + 1e-6, "delta {d} epsilon {e}");
        }
        assert!(t.vmax() >= 3500.0);
    }

    #[test]
    fn elastic_lame_from_velocities() {
        let e = ElasticModel::homogeneous(dom(4), 3000.0, 1200.0, 2500.0);
        let mu = 2500.0f32 * 1200.0 * 1200.0;
        let lam = 2500.0f32 * 3000.0 * 3000.0 - 2.0 * mu;
        assert_eq!(e.mu.get(1, 1, 1), mu);
        assert_eq!(e.lam.get(1, 1, 1), lam);
        assert_eq!(e.buoyancy.get(0, 0, 0), 1.0 / 2500.0);
        assert!(lam > 0.0);
    }

    #[test]
    #[should_panic(expected = "vs < vp")]
    fn elastic_rejects_unphysical_vs() {
        let _ = ElasticModel::homogeneous(dom(4), 1000.0, 900.0, 2500.0);
    }

    #[test]
    fn elastic_random_is_deterministic() {
        let a = ElasticModel::random(dom(4), 2000.0, 4000.0, 3);
        let b = ElasticModel::random(dom(4), 2000.0, 4000.0, 3);
        assert!(a.lam.bit_equal(&b.lam));
        assert!(a.mu.bit_equal(&b.mu));
        assert!(a.buoyancy.bit_equal(&b.buoyancy));
    }
}
