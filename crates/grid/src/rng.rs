//! A tiny deterministic pseudo-random generator for model perturbations and
//! randomised tests.
//!
//! The workspace builds hermetically (no external crates), so instead of
//! `rand` we use SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) — a 64-bit
//! state, full-period mixer that is more than adequate for seeding velocity
//! perturbations and property-style test case generation. Streams are fully
//! determined by the seed, which the benchmark builders rely on for
//! run-to-run reproducibility.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed` (every seed is valid, including 0).
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-entropy bits → the full f32 mantissa range in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)` (`lo` when the range is empty).
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo).max(0.0) * self.next_f32()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty integer range");
        // Modulo bias is < 2⁻⁴⁰ for the range sizes used here (≤ 2²⁴).
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(Rng64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = Rng64::new(123);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng64::new(5);
        for _ in 0..10_000 {
            let v = r.range_f32(1500.0, 4500.0);
            assert!((1500.0..4500.0).contains(&v));
            let i = r.range_usize(3, 17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng64::new(99);
        let mut buckets = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[(r.next_f32() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            // 10σ bounds on a binomial(100k, 0.1).
            assert!((9000..11000).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_range_rejected() {
        let _ = Rng64::new(0).range_usize(4, 4);
    }
}
