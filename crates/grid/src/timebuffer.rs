//! Circular buffers over the time dimension.
//!
//! Explicit time stepping keeps only `time_order + 1` wavefield levels alive
//! (paper Fig. 7: "only two timesteps are kept in memory for time order one
//! problems"). `TimeBuffer` stores those levels and hands stencil kernels
//! simultaneous shared borrows of the read levels plus a unique borrow of the
//! write level, with the aliasing check done once per invocation rather than
//! per element.

use crate::field::Field;
use crate::shape::Shape;

/// A circular buffer of [`Field`] time levels.
///
/// Logical timestep `t` lives in slot `t % num_levels`. For a second-order-in-
/// time propagator use 3 levels (`u[t-1]`, `u[t]`, `u[t+1]`); for first-order
/// (elastic velocity–stress) use 2.
#[derive(Debug, Clone)]
pub struct TimeBuffer {
    levels: Vec<Field>,
}

impl TimeBuffer {
    /// Allocate `num_levels` zeroed fields of the given interior shape/halo.
    pub fn zeros(shape: Shape, halo: usize, num_levels: usize) -> Self {
        assert!(num_levels >= 2, "a time buffer needs at least two levels");
        TimeBuffer {
            levels: (0..num_levels).map(|_| Field::zeros(shape, halo)).collect(),
        }
    }

    /// Number of stored time levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Interior shape of each level.
    pub fn shape(&self) -> Shape {
        self.levels[0].shape()
    }

    /// Halo width of each level.
    pub fn halo(&self) -> usize {
        self.levels[0].halo()
    }

    /// Storage slot for logical timestep `t`.
    #[inline]
    pub fn slot(&self, t: usize) -> usize {
        t % self.levels.len()
    }

    /// Shared borrow of the level holding timestep `t`.
    #[inline]
    pub fn level(&self, t: usize) -> &Field {
        &self.levels[self.slot(t)]
    }

    /// Unique borrow of the level holding timestep `t`.
    #[inline]
    pub fn level_mut(&mut self, t: usize) -> &mut Field {
        let s = self.slot(t);
        &mut self.levels[s]
    }

    /// Borrow `N` read levels and one write level simultaneously.
    ///
    /// # Panics
    /// If any read timestep maps to the same storage slot as the write
    /// timestep (which would alias a `&` with a `&mut`). Reads may alias each
    /// other freely.
    pub fn read_write<const N: usize>(
        &mut self,
        reads: [usize; N],
        write: usize,
    ) -> ([&Field; N], &mut Field) {
        let n = self.levels.len();
        let w = write % n;
        for &r in &reads {
            assert_ne!(
                r % n,
                w,
                "read timestep {r} aliases write timestep {write} (buffer of {n} levels)"
            );
        }
        let ptr = self.levels.as_mut_ptr();
        // SAFETY: every read slot is distinct from the write slot (asserted
        // above), all slots are in-bounds (`% n`), and the returned borrows
        // tie to `&mut self`, so no other access can overlap their lifetime.
        unsafe {
            let write_ref: &mut Field = &mut *ptr.add(w);
            let read_refs: [&Field; N] = reads.map(|r| &*(ptr.add(r % n) as *const Field));
            (read_refs, write_ref)
        }
    }

    /// Zero every level.
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cycle() {
        let b = TimeBuffer::zeros(Shape::cube(2), 1, 3);
        assert_eq!(b.slot(0), 0);
        assert_eq!(b.slot(1), 1);
        assert_eq!(b.slot(2), 2);
        assert_eq!(b.slot(3), 0);
        assert_eq!(b.slot(7), 1);
    }

    #[test]
    fn levels_are_independent() {
        let mut b = TimeBuffer::zeros(Shape::cube(2), 1, 2);
        b.level_mut(0).set(0, 0, 0, 1.0);
        b.level_mut(1).set(0, 0, 0, 2.0);
        assert_eq!(b.level(0).get(0, 0, 0), 1.0);
        assert_eq!(b.level(1).get(0, 0, 0), 2.0);
        // t=2 wraps onto slot 0.
        assert_eq!(b.level(2).get(0, 0, 0), 1.0);
    }

    #[test]
    fn read_write_disjoint_borrows() {
        let mut b = TimeBuffer::zeros(Shape::cube(2), 1, 3);
        b.level_mut(1).set(1, 1, 1, 5.0);
        b.level_mut(2).set(1, 1, 1, 7.0);
        let ([um1, u0], u1) = b.read_write([1, 2], 3);
        assert_eq!(um1.get(1, 1, 1), 5.0);
        assert_eq!(u0.get(1, 1, 1), 7.0);
        u1.set(1, 1, 1, um1.get(1, 1, 1) + u0.get(1, 1, 1));
        assert_eq!(b.level(3).get(1, 1, 1), 12.0);
        // Slot 0 was the write target for t=3.
        assert_eq!(b.level(0).get(1, 1, 1), 12.0);
    }

    #[test]
    fn read_write_allows_duplicate_reads() {
        let mut b = TimeBuffer::zeros(Shape::cube(2), 0, 2);
        b.level_mut(0).set(0, 0, 0, 3.0);
        let ([a, b2], w) = b.read_write([0, 0], 1);
        assert_eq!(a.get(0, 0, 0), 3.0);
        assert_eq!(b2.get(0, 0, 0), 3.0);
        w.set(0, 0, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn read_write_rejects_aliasing() {
        let mut b = TimeBuffer::zeros(Shape::cube(2), 0, 2);
        let _ = b.read_write([1], 3); // 1 % 2 == 3 % 2
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_level() {
        let _ = TimeBuffer::zeros(Shape::cube(2), 0, 1);
    }

    #[test]
    fn clear_zeroes_all_levels() {
        let mut b = TimeBuffer::zeros(Shape::cube(2), 1, 3);
        for t in 0..3 {
            b.level_mut(t).set(0, 0, 0, 1.0 + t as f32);
        }
        b.clear();
        for t in 0..3 {
            assert_eq!(b.level(t).interior_max_abs(), 0.0);
        }
    }
}
