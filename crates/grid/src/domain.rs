//! Physical domain: grid spacing, origin and coordinate mapping.
//!
//! Off-the-grid sources and receivers are specified in *physical* coordinates
//! (metres). The [`Domain`] maps those onto fractional grid indices, from
//! which the interpolation machinery in `tempest-sparse` derives the set of
//! surrounding grid points and their trilinear weights (paper Fig. 3).

use crate::shape::Shape;

/// Physical description of the computational grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    shape: Shape,
    /// Grid spacing (m) along each axis. The paper uses 10 m for
    /// isotropic/elastic and 20 m for TTI (§IV.B).
    spacing: [f32; 3],
    /// Physical coordinate of grid point (0, 0, 0).
    origin: [f32; 3],
}

impl Domain {
    /// Create a domain with the given shape and uniform spacing, origin 0.
    pub fn uniform(shape: Shape, h: f32) -> Self {
        assert!(h > 0.0, "grid spacing must be positive");
        Domain {
            shape,
            spacing: [h, h, h],
            origin: [0.0; 3],
        }
    }

    /// Create a domain with per-axis spacing and explicit origin.
    pub fn new(shape: Shape, spacing: [f32; 3], origin: [f32; 3]) -> Self {
        assert!(
            spacing.iter().all(|&s| s > 0.0),
            "grid spacing must be positive"
        );
        Domain {
            shape,
            spacing,
            origin,
        }
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Per-axis spacing.
    pub fn spacing(&self) -> [f32; 3] {
        self.spacing
    }

    /// Smallest spacing over the three axes (enters the CFL condition).
    pub fn min_spacing(&self) -> f32 {
        self.spacing[0].min(self.spacing[1]).min(self.spacing[2])
    }

    /// Physical origin.
    pub fn origin(&self) -> [f32; 3] {
        self.origin
    }

    /// Physical extent along each axis: `(n - 1) * h`.
    pub fn extent(&self) -> [f32; 3] {
        [
            (self.shape.nx - 1) as f32 * self.spacing[0],
            (self.shape.ny - 1) as f32 * self.spacing[1],
            (self.shape.nz - 1) as f32 * self.spacing[2],
        ]
    }

    /// Physical coordinate of grid point `(x, y, z)`.
    pub fn coord_of(&self, x: usize, y: usize, z: usize) -> [f32; 3] {
        [
            self.origin[0] + x as f32 * self.spacing[0],
            self.origin[1] + y as f32 * self.spacing[1],
            self.origin[2] + z as f32 * self.spacing[2],
        ]
    }

    /// Fractional grid index of a physical coordinate.
    ///
    /// The integer part selects the lower corner of the surrounding cell, the
    /// fractional part is the interpolation offset in `[0, 1)`.
    pub fn frac_index(&self, p: [f32; 3]) -> [f32; 3] {
        [
            (p[0] - self.origin[0]) / self.spacing[0],
            (p[1] - self.origin[1]) / self.spacing[1],
            (p[2] - self.origin[2]) / self.spacing[2],
        ]
    }

    /// Is the physical point inside the grid (inclusive of the last point)?
    pub fn contains_point(&self, p: [f32; 3]) -> bool {
        let f = self.frac_index(p);
        let d = [
            (self.shape.nx - 1) as f32,
            (self.shape.ny - 1) as f32,
            (self.shape.nz - 1) as f32,
        ];
        (0..3).all(|i| f[i] >= 0.0 && f[i] <= d[i])
    }

    /// Physical coordinate of the domain centre (typical shot location).
    pub fn center(&self) -> [f32; 3] {
        let e = self.extent();
        [
            self.origin[0] + 0.5 * e[0],
            self.origin[1] + 0.5 * e[1],
            self.origin[2] + 0.5 * e[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_and_frac_index_roundtrip() {
        let d = Domain::uniform(Shape::cube(11), 10.0);
        let c = d.coord_of(3, 4, 5);
        assert_eq!(c, [30.0, 40.0, 50.0]);
        assert_eq!(d.frac_index(c), [3.0, 4.0, 5.0]);
    }

    #[test]
    fn frac_index_with_origin_and_anisotropic_spacing() {
        let d = Domain::new(Shape::new(10, 20, 30), [10.0, 5.0, 2.0], [100.0, 0.0, -10.0]);
        let f = d.frac_index([125.0, 7.5, -9.0]);
        assert_eq!(f, [2.5, 1.5, 0.5]);
    }

    #[test]
    fn extent_and_center() {
        let d = Domain::uniform(Shape::cube(101), 10.0);
        assert_eq!(d.extent(), [1000.0, 1000.0, 1000.0]);
        assert_eq!(d.center(), [500.0, 500.0, 500.0]);
    }

    #[test]
    fn contains_point_edges() {
        let d = Domain::uniform(Shape::cube(11), 10.0);
        assert!(d.contains_point([0.0, 0.0, 0.0]));
        assert!(d.contains_point([100.0, 100.0, 100.0]));
        assert!(d.contains_point([55.5, 0.1, 99.9]));
        assert!(!d.contains_point([100.1, 50.0, 50.0]));
        assert!(!d.contains_point([-0.1, 50.0, 50.0]));
    }

    #[test]
    fn min_spacing_picks_smallest() {
        let d = Domain::new(Shape::cube(4), [10.0, 5.0, 20.0], [0.0; 3]);
        assert_eq!(d.min_spacing(), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_spacing() {
        let _ = Domain::uniform(Shape::cube(4), 0.0);
    }
}
