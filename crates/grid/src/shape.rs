//! Grid shapes, index arithmetic and sub-ranges.

/// The logical extent of a 3-D grid (interior points, excluding halos).
///
/// Axis order is `(x, y, z)` with `z` the contiguous (fastest-varying,
/// vectorisable) axis, matching the loop nests in the paper's Listings 1–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Shape {
    /// Create a shape; all extents must be non-zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "shape extents must be non-zero");
        Shape { nx, ny, nz }
    }

    /// A cube-shaped grid of side `n` (the paper benchmarks 512³ cubes).
    pub fn cube(n: usize) -> Self {
        Shape::new(n, n, n)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid has zero points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extents as an `[nx, ny, nz]` array.
    pub fn dims(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Shape grown by `h` points on every side of every axis (halo padding).
    pub fn padded(&self, h: usize) -> Shape {
        Shape::new(self.nx + 2 * h, self.ny + 2 * h, self.nz + 2 * h)
    }

    /// Length of one allocated `z`-row when rows are padded up to a multiple
    /// of the SIMD lane width (see `tempest_stencil::simd::LANE`).
    pub fn z_row_aligned(&self, lane: usize) -> usize {
        assert!(lane > 0, "lane width must be non-zero");
        self.nz.next_multiple_of(lane)
    }

    /// Does `(x, y, z)` lie inside the grid?
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// The full-interior range of this shape.
    pub fn full_range(&self) -> Range3 {
        Range3 {
            x0: 0,
            x1: self.nx,
            y0: 0,
            y1: self.ny,
            z0: 0,
            z1: self.nz,
        }
    }

    /// Iterate all `(x, y, z)` indices in canonical (z-fastest) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (ny, nz) = (self.ny, self.nz);
        (0..self.nx).flat_map(move |x| (0..ny).flat_map(move |y| (0..nz).map(move |z| (x, y, z))))
    }
}

/// A half-open axis-aligned box of grid indices: `[x0, x1) × [y0, y1) × [z0, z1)`.
///
/// `Range3` is the unit of work handed to stencil kernels by the blocking /
/// tiling schedules: a spatial block (paper Fig. 4a) or one skewed slab of a
/// wave-front tile (paper Fig. 8a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range3 {
    pub x0: usize,
    pub x1: usize,
    pub y0: usize,
    pub y1: usize,
    pub z0: usize,
    pub z1: usize,
}

impl Range3 {
    /// Construct a range; empty ranges (`a0 == a1`) are allowed.
    pub fn new(x: (usize, usize), y: (usize, usize), z: (usize, usize)) -> Self {
        assert!(x.0 <= x.1 && y.0 <= y.1 && z.0 <= z.1, "inverted range");
        Range3 {
            x0: x.0,
            x1: x.1,
            y0: y.0,
            y1: y.1,
            z0: z.0,
            z1: z.1,
        }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)
    }

    /// True when the box covers no points.
    pub fn is_empty(&self) -> bool {
        self.x1 == self.x0 || self.y1 == self.y0 || self.z1 == self.z0
    }

    /// Intersect with another range (used to clip skewed slabs to the grid).
    pub fn intersect(&self, other: &Range3) -> Range3 {
        Range3 {
            x0: self.x0.max(other.x0),
            x1: self.x1.min(other.x1).max(self.x0.max(other.x0)),
            y0: self.y0.max(other.y0),
            y1: self.y1.min(other.y1).max(self.y0.max(other.y0)),
            z0: self.z0.max(other.z0),
            z1: self.z1.min(other.z1).max(self.z0.max(other.z0)),
        }
    }

    /// Does the range contain the point?
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1 && z >= self.z0 && z < self.z1
    }

    /// Iterate all points in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (y0, y1, z0, z1) = (self.y0, self.y1, self.z0, self.z1);
        (self.x0..self.x1)
            .flat_map(move |x| (y0..y1).flat_map(move |y| (z0..z1).map(move |z| (x, y, z))))
    }

    /// Split into sub-blocks of at most `(bx, by)` in x/y, keeping z whole.
    ///
    /// This is the paper's inner *space block* decomposition of a tile
    /// (`block_x`, `block_y` of Table I); the z axis always stays contiguous
    /// for vectorisation.
    pub fn split_xy(&self, bx: usize, by: usize) -> Vec<Range3> {
        assert!(bx > 0 && by > 0);
        let mut out = Vec::new();
        let mut x = self.x0;
        while x < self.x1 {
            let xe = (x + bx).min(self.x1);
            let mut y = self.y0;
            while y < self.y1 {
                let ye = (y + by).min(self.y1);
                out.push(Range3::new((x, xe), (y, ye), (self.z0, self.z1)));
                y = ye;
            }
            x = xe;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_dims() {
        let s = Shape::new(4, 5, 6);
        assert_eq!(s.len(), 120);
        assert_eq!(s.dims(), [4, 5, 6]);
        assert!(!s.is_empty());
    }

    #[test]
    fn shape_cube_and_padding() {
        let s = Shape::cube(8);
        assert_eq!(s, Shape::new(8, 8, 8));
        assert_eq!(s.padded(2), Shape::new(12, 12, 12));
    }

    #[test]
    fn z_row_aligned_rounds_up() {
        let s = Shape::new(4, 4, 13);
        assert_eq!(s.z_row_aligned(8), 16);
        assert_eq!(s.z_row_aligned(1), 13);
        assert_eq!(Shape::new(4, 4, 16).z_row_aligned(8), 16);
    }

    #[test]
    fn shape_contains_boundaries() {
        let s = Shape::new(3, 3, 3);
        assert!(s.contains(2, 2, 2));
        assert!(!s.contains(3, 0, 0));
        assert!(!s.contains(0, 3, 0));
        assert!(!s.contains(0, 0, 3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn shape_rejects_zero_extent() {
        let _ = Shape::new(0, 1, 1);
    }

    #[test]
    fn shape_iter_visits_every_point_once_in_order() {
        let s = Shape::new(2, 3, 4);
        let pts: Vec<_> = s.iter().collect();
        assert_eq!(pts.len(), 24);
        assert_eq!(pts[0], (0, 0, 0));
        assert_eq!(pts[1], (0, 0, 1)); // z fastest
        assert_eq!(pts[4], (0, 1, 0));
        assert_eq!(pts[23], (1, 2, 3));
        let mut sorted = pts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn range_len_and_contains() {
        let r = Range3::new((1, 4), (0, 2), (5, 10));
        assert_eq!(r.len(), 3 * 2 * 5);
        assert!(r.contains(1, 0, 5));
        assert!(r.contains(3, 1, 9));
        assert!(!r.contains(4, 1, 9));
        assert!(!r.contains(3, 2, 9));
        assert!(!r.contains(3, 1, 10));
        assert!(!r.contains(0, 0, 5));
    }

    #[test]
    fn range_empty() {
        let r = Range3::new((2, 2), (0, 5), (0, 5));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn range_intersection_clips() {
        let a = Range3::new((0, 10), (0, 10), (0, 10));
        let b = Range3::new((5, 15), (2, 3), (0, 10));
        let c = a.intersect(&b);
        assert_eq!(c, Range3::new((5, 10), (2, 3), (0, 10)));
    }

    #[test]
    fn range_intersection_disjoint_is_empty() {
        let a = Range3::new((0, 4), (0, 4), (0, 4));
        let b = Range3::new((8, 12), (0, 4), (0, 4));
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn split_xy_tiles_cover_exactly() {
        let r = Range3::new((0, 10), (0, 7), (0, 5));
        let blocks = r.split_xy(4, 3);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, r.len());
        // Every point belongs to exactly one block.
        for p in r.iter() {
            let n = blocks
                .iter()
                .filter(|b| b.contains(p.0, p.1, p.2))
                .count();
            assert_eq!(n, 1, "point {p:?} covered {n} times");
        }
        // Block shapes never exceed the requested block size.
        for b in &blocks {
            assert!(b.x1 - b.x0 <= 4);
            assert!(b.y1 - b.y0 <= 3);
            assert_eq!((b.z0, b.z1), (0, 5));
        }
    }

    #[test]
    fn split_xy_single_block_when_bigger_than_range() {
        let r = Range3::new((0, 3), (0, 3), (0, 3));
        let blocks = r.split_xy(100, 100);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], r);
    }
}
