//! Flat dense 2-D and 3-D arrays.
//!
//! Storage is a single contiguous `Vec` in row-major order with the last axis
//! contiguous. Stencil kernels obtain raw `&[T]` pencils along `z` and index
//! with precomputed strides, so the hot loops carry no per-element bounds
//! checks beyond what the compiler can hoist.

use crate::shape::Shape;

/// A dense 3-D array with `z` contiguous.
///
/// Each `z`-row occupies `z_stride() >= nz` physical elements; the default
/// constructors pack rows tightly (`z_stride() == nz`), while the
/// `*_lane_aligned` constructors pad every row to a multiple of a SIMD lane
/// width so pencil base addresses share the same lane phase (see
/// `tempest_stencil::simd`). The padding elements are storage only: they are
/// invisible to indexing, iteration, comparisons and norms.
#[derive(Debug, Clone)]
pub struct Array3<T> {
    dims: [usize; 3],
    /// Physical length of one `z`-row (`>= dims[2]`).
    zs: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Array3<T> {
    /// Allocate a zero-initialised (default-initialised) array.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "array extents must be non-zero");
        Array3 {
            dims: [nx, ny, nz],
            zs: nz,
            data: vec![T::default(); nx * ny * nz],
        }
    }

    /// Allocate from a [`Shape`].
    pub fn from_shape(s: Shape) -> Self {
        Self::zeros(s.nx, s.ny, s.nz)
    }

    /// Allocate filled with `v`.
    pub fn full(nx: usize, ny: usize, nz: usize, v: T) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "array extents must be non-zero");
        Array3 {
            dims: [nx, ny, nz],
            zs: nz,
            data: vec![v; nx * ny * nz],
        }
    }

    /// Allocate zero-initialised with every `z`-row padded to a multiple of
    /// `lane` elements, so each pencil starts at a lane-phase-aligned offset.
    pub fn zeros_lane_aligned(nx: usize, ny: usize, nz: usize, lane: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "array extents must be non-zero");
        assert!(lane > 0, "lane width must be non-zero");
        let zs = nz.next_multiple_of(lane);
        Array3 {
            dims: [nx, ny, nz],
            zs,
            data: vec![T::default(); nx * ny * zs],
        }
    }

    /// Allocate from a [`Shape`] with lane-aligned `z`-rows.
    pub fn from_shape_lane_aligned(s: Shape, lane: usize) -> Self {
        Self::zeros_lane_aligned(s.nx, s.ny, s.nz, lane)
    }

    /// Copy into a new array whose `z`-rows are padded to a multiple of
    /// `lane`. The logical content is identical (`bit_equal` for `f32`).
    pub fn to_lane_aligned(&self, lane: usize) -> Self {
        let [nx, ny, nz] = self.dims;
        let mut out = Self::zeros_lane_aligned(nx, ny, nz, lane);
        for x in 0..nx {
            for y in 0..ny {
                out.pencil_mut(x, y).copy_from_slice(self.pencil(x, y));
            }
        }
        out
    }
}

impl<T: Copy> Array3<T> {
    /// Dimensions `[nx, ny, nz]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Shape view of the dimensions.
    pub fn shape(&self) -> Shape {
        Shape::new(self.dims[0], self.dims[1], self.dims[2])
    }

    /// Allocated element count, *including* any lane-alignment row padding.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (extents are non-zero by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Stride of the `x` axis in elements (`ny * z_stride`).
    #[inline]
    pub fn stride_x(&self) -> usize {
        self.dims[1] * self.zs
    }

    /// Stride of the `y` axis in elements (the physical `z`-row length).
    #[inline]
    pub fn stride_y(&self) -> usize {
        self.zs
    }

    /// Physical length of one `z`-row; equals `nz` unless lane-aligned.
    #[inline]
    pub fn z_stride(&self) -> usize {
        self.zs
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(
            x < self.dims[0] && y < self.dims[1] && z < self.dims[2],
            "index ({x},{y},{z}) out of bounds {:?}",
            self.dims
        );
        (x * self.dims[1] + y) * self.zs + z
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.idx(x, y, z)]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Borrow the whole backing slice (includes alignment padding, if any;
    /// tightly packed for default-constructed arrays).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the whole backing slice (see [`as_slice`](Self::as_slice)).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate the logical `z`-rows (length `nz` each) in `(x, y)` order,
    /// skipping any alignment padding.
    #[inline]
    pub fn rows(&self) -> impl Iterator<Item = &[T]> + '_ {
        let nz = self.dims[2];
        let zs = self.zs;
        (0..self.dims[0] * self.dims[1]).map(move |r| &self.data[r * zs..r * zs + nz])
    }

    /// The contiguous `z` pencil at `(x, y)`.
    #[inline]
    pub fn pencil(&self, x: usize, y: usize) -> &[T] {
        let start = self.idx(x, y, 0);
        &self.data[start..start + self.dims[2]]
    }

    /// The contiguous mutable `z` pencil at `(x, y)`.
    #[inline]
    pub fn pencil_mut(&mut self, x: usize, y: usize) -> &mut [T] {
        let start = self.idx(x, y, 0);
        let nz = self.dims[2];
        &mut self.data[start..start + nz]
    }

    /// Fill every element with `v` (alignment padding included — it is
    /// storage only and never read back through the logical API).
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Iterate `(x, y, z, value)` in canonical order (padding skipped).
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, T)> + '_ {
        let ny = self.dims[1];
        self.rows().enumerate().flat_map(move |(r, row)| {
            let (x, y) = (r / ny, r % ny);
            row.iter().enumerate().map(move |(z, &v)| (x, y, z, v))
        })
    }
}

impl Array3<f32> {
    /// Maximum absolute value (0 for an all-zero array; padding ignored).
    pub fn max_abs(&self) -> f32 {
        self.rows()
            .flatten()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of the array (padding ignored).
    pub fn norm_l2(&self) -> f64 {
        self.rows()
            .flatten()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute element-wise difference against `other`. The arrays
    /// may differ in alignment padding; only logical content is compared.
    pub fn max_abs_diff(&self, other: &Array3<f32>) -> f32 {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        self.rows()
            .flatten()
            .zip(other.rows().flatten())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Exact bitwise equality with `other` (used by schedule-equivalence
    /// tests). Alignment padding is not compared, so a lane-aligned array
    /// `bit_equal`s its tightly packed twin.
    pub fn bit_equal(&self, other: &Array3<f32>) -> bool {
        self.dims == other.dims
            && self
                .rows()
                .flatten()
                .zip(other.rows().flatten())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Count of non-zero elements (padding ignored).
    pub fn count_nonzero(&self) -> usize {
        self.rows().flatten().filter(|&&v| v != 0.0).count()
    }
}

/// Logical equality: same dimensions and same content, regardless of any
/// difference in alignment padding.
impl<T: Copy + PartialEq> PartialEq for Array3<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims
            && self
                .rows()
                .zip(other.rows())
                .all(|(a, b)| a == b)
    }
}

impl<T: Copy> std::ops::Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y, z): (usize, usize, usize)) -> &T {
        &self.data[(x * self.dims[1] + y) * self.zs + z]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize, usize)> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, (x, y, z): (usize, usize, usize)) -> &mut T {
        &mut self.data[(x * self.dims[1] + y) * self.zs + z]
    }
}

/// A dense 2-D array with the second axis contiguous.
///
/// Used for per-pencil metadata (the paper's `nnz_mask[x][y]`), decomposed
/// source wavelets (`src_dcmp[t][id]`) and receiver traces (`rec[t][r]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Array2<T> {
    dims: [usize; 2],
    data: Vec<T>,
}

impl<T: Copy + Default> Array2<T> {
    /// Allocate a default-initialised array.
    pub fn zeros(n0: usize, n1: usize) -> Self {
        assert!(n0 > 0 && n1 > 0, "array extents must be non-zero");
        Array2 {
            dims: [n0, n1],
            data: vec![T::default(); n0 * n1],
        }
    }
}

impl<T: Copy> Array2<T> {
    /// Dimensions `[n0, n1]`.
    #[inline]
    pub fn dims(&self) -> [usize; 2] {
        self.dims
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.dims[0] && j < self.dims[1]);
        self.data[i * self.dims[1] + j]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.dims[0] && j < self.dims[1]);
        self.data[i * self.dims[1] + j] = v;
    }

    /// The contiguous row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let n1 = self.dims[1];
        &self.data[i * n1..(i + 1) * n1]
    }

    /// The contiguous mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let n1 = self.dims[1];
        &mut self.data[i * n1..(i + 1) * n1]
    }

    /// Borrow the whole backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the whole backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

impl<T: Copy> std::ops::Index<(usize, usize)> for Array2<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.dims[1] + j]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize)> for Array2<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.dims[1] + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_default() {
        let a: Array3<f32> = Array3::zeros(2, 3, 4);
        assert_eq!(a.len(), 24);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(a.max_abs(), 0.0);
        assert_eq!(a.count_nonzero(), 0);
    }

    #[test]
    fn set_get_roundtrip_and_linearisation() {
        let mut a: Array3<f32> = Array3::zeros(3, 4, 5);
        a.set(1, 2, 3, 7.5);
        assert_eq!(a.get(1, 2, 3), 7.5);
        assert_eq!(a[(1, 2, 3)], 7.5);
        // Row-major, z contiguous.
        assert_eq!(a.idx(1, 2, 3), (4 + 2) * 5 + 3);
        assert_eq!(a.stride_x(), 20);
        assert_eq!(a.stride_y(), 5);
    }

    #[test]
    fn pencils_are_contiguous_z() {
        let mut a: Array3<f32> = Array3::zeros(2, 2, 6);
        for z in 0..6 {
            a.set(1, 0, z, z as f32);
        }
        let p = a.pencil(1, 0);
        assert_eq!(p, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        a.pencil_mut(1, 0)[5] = -1.0;
        assert_eq!(a.get(1, 0, 5), -1.0);
    }

    #[test]
    fn iter_indexed_matches_get() {
        let mut a: Array3<f32> = Array3::zeros(2, 3, 2);
        for (k, (x, y, z)) in a.shape().iter().collect::<Vec<_>>().iter().enumerate() {
            a.set(*x, *y, *z, k as f32);
        }
        for (x, y, z, v) in a.iter_indexed() {
            assert_eq!(v, a.get(x, y, z));
        }
    }

    #[test]
    fn norms_and_diffs() {
        let mut a: Array3<f32> = Array3::zeros(2, 2, 2);
        let mut b: Array3<f32> = Array3::zeros(2, 2, 2);
        a.set(0, 0, 0, 3.0);
        a.set(1, 1, 1, -4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm_l2() - 5.0).abs() < 1e-12);
        b.set(0, 0, 0, 3.0);
        assert_eq!(a.max_abs_diff(&b), 4.0);
        assert!(!a.bit_equal(&b));
        b.set(1, 1, 1, -4.0);
        assert!(a.bit_equal(&b));
    }

    #[test]
    fn bit_equal_distinguishes_signed_zero() {
        let mut a: Array3<f32> = Array3::zeros(1, 1, 1);
        let b: Array3<f32> = Array3::zeros(1, 1, 1);
        a.set(0, 0, 0, -0.0);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(!a.bit_equal(&b), "bit_equal must see -0.0 != +0.0");
    }

    #[test]
    fn full_fills() {
        let a: Array3<f32> = Array3::full(2, 2, 2, 1.5);
        assert!(a.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn array2_rows() {
        let mut a: Array2<i32> = Array2::zeros(3, 4);
        a.set(2, 1, 9);
        assert_eq!(a.get(2, 1), 9);
        assert_eq!(a[(2, 1)], 9);
        assert_eq!(a.row(2), &[0, 9, 0, 0]);
        a.row_mut(0)[3] = 7;
        assert_eq!(a.get(0, 3), 7);
        assert_eq!(a.dims(), [3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_extent() {
        let _: Array3<f32> = Array3::zeros(1, 0, 1);
    }

    #[test]
    fn fill_resets() {
        let mut a: Array3<f32> = Array3::full(2, 2, 2, 3.0);
        a.fill(0.0);
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn lane_aligned_pads_z_rows() {
        let a: Array3<f32> = Array3::zeros_lane_aligned(3, 4, 13, 8);
        assert_eq!(a.dims(), [3, 4, 13]);
        assert_eq!(a.z_stride(), 16);
        assert_eq!(a.stride_y(), 16);
        assert_eq!(a.stride_x(), 4 * 16);
        assert_eq!(a.len(), 3 * 4 * 16);
        // Every pencil base is a multiple of the lane width.
        for x in 0..3 {
            for y in 0..4 {
                assert_eq!(a.idx(x, y, 0) % 8, 0, "pencil ({x},{y}) unaligned");
            }
        }
        // Already-aligned extents gain no padding.
        let b: Array3<f32> = Array3::zeros_lane_aligned(2, 2, 16, 8);
        assert_eq!(b.z_stride(), 16);
        assert_eq!(b.len(), 2 * 2 * 16);
    }

    #[test]
    fn aligned_and_packed_agree_logically() {
        let mut packed: Array3<f32> = Array3::zeros(3, 3, 11);
        for (k, (x, y, z)) in packed.shape().iter().collect::<Vec<_>>().iter().enumerate() {
            packed.set(*x, *y, *z, k as f32 * 0.25 - 3.0);
        }
        let aligned = packed.to_lane_aligned(8);
        assert_eq!(aligned.z_stride(), 16);
        assert!(packed.bit_equal(&aligned));
        assert!(aligned.bit_equal(&packed));
        assert_eq!(packed, aligned);
        assert_eq!(packed.max_abs_diff(&aligned), 0.0);
        assert_eq!(packed.max_abs(), aligned.max_abs());
        assert_eq!(packed.norm_l2(), aligned.norm_l2());
        assert_eq!(packed.count_nonzero(), aligned.count_nonzero());
        // Accessors see identical values.
        for (x, y, z, v) in packed.iter_indexed() {
            assert_eq!(aligned.get(x, y, z), v);
            assert_eq!(aligned[(x, y, z)], v);
        }
        // Pencils are the logical nz window, not the padded row.
        assert_eq!(aligned.pencil(1, 2).len(), 11);
        assert_eq!(aligned.pencil(1, 2), packed.pencil(1, 2));
        // iter_indexed covers exactly the logical points.
        assert_eq!(aligned.iter_indexed().count(), 3 * 3 * 11);
    }

    #[test]
    fn aligned_mutation_stays_in_row() {
        let mut a: Array3<f32> = Array3::zeros_lane_aligned(2, 2, 5, 8);
        a.pencil_mut(0, 0).fill(1.0);
        a.set(0, 1, 0, 2.0);
        a[(1, 1, 4)] = 3.0;
        assert_eq!(a.count_nonzero(), 7);
        assert_eq!(a.get(0, 0, 4), 1.0);
        assert_eq!(a.get(0, 1, 0), 2.0);
        assert_eq!(a.get(1, 1, 4), 3.0);
        // Padding slots remained untouched by pencil writes.
        assert_eq!(a.as_slice()[5..8], [0.0; 3]);
    }
}
