//! Flat dense 2-D and 3-D arrays.
//!
//! Storage is a single contiguous `Vec` in row-major order with the last axis
//! contiguous. Stencil kernels obtain raw `&[T]` pencils along `z` and index
//! with precomputed strides, so the hot loops carry no per-element bounds
//! checks beyond what the compiler can hoist.

use crate::shape::Shape;

/// A dense 3-D array with `z` contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3<T> {
    dims: [usize; 3],
    data: Vec<T>,
}

impl<T: Copy + Default> Array3<T> {
    /// Allocate a zero-initialised (default-initialised) array.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "array extents must be non-zero");
        Array3 {
            dims: [nx, ny, nz],
            data: vec![T::default(); nx * ny * nz],
        }
    }

    /// Allocate from a [`Shape`].
    pub fn from_shape(s: Shape) -> Self {
        Self::zeros(s.nx, s.ny, s.nz)
    }

    /// Allocate filled with `v`.
    pub fn full(nx: usize, ny: usize, nz: usize, v: T) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "array extents must be non-zero");
        Array3 {
            dims: [nx, ny, nz],
            data: vec![v; nx * ny * nz],
        }
    }
}

impl<T: Copy> Array3<T> {
    /// Dimensions `[nx, ny, nz]`.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Shape view of the dimensions.
    pub fn shape(&self) -> Shape {
        Shape::new(self.dims[0], self.dims[1], self.dims[2])
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (extents are non-zero by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Stride of the `x` axis in elements (`ny * nz`).
    #[inline]
    pub fn stride_x(&self) -> usize {
        self.dims[1] * self.dims[2]
    }

    /// Stride of the `y` axis in elements (`nz`).
    #[inline]
    pub fn stride_y(&self) -> usize {
        self.dims[2]
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(
            x < self.dims[0] && y < self.dims[1] && z < self.dims[2],
            "index ({x},{y},{z}) out of bounds {:?}",
            self.dims
        );
        (x * self.dims[1] + y) * self.dims[2] + z
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.idx(x, y, z)]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Borrow the whole backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the whole backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The contiguous `z` pencil at `(x, y)`.
    #[inline]
    pub fn pencil(&self, x: usize, y: usize) -> &[T] {
        let start = self.idx(x, y, 0);
        &self.data[start..start + self.dims[2]]
    }

    /// The contiguous mutable `z` pencil at `(x, y)`.
    #[inline]
    pub fn pencil_mut(&mut self, x: usize, y: usize) -> &mut [T] {
        let start = self.idx(x, y, 0);
        let nz = self.dims[2];
        &mut self.data[start..start + nz]
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Iterate `(x, y, z, value)` in canonical order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, T)> + '_ {
        let [_, ny, nz] = self.dims;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let z = i % nz;
            let y = (i / nz) % ny;
            let x = i / (nz * ny);
            (x, y, z, v)
        })
    }
}

impl Array3<f32> {
    /// Maximum absolute value (0 for an all-zero array).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of the array.
    pub fn norm_l2(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Array3<f32>) -> f32 {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Exact bitwise equality with `other` (used by schedule-equivalence tests).
    pub fn bit_equal(&self, other: &Array3<f32>) -> bool {
        self.dims == other.dims
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Count of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

impl<T: Copy> std::ops::Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y, z): (usize, usize, usize)) -> &T {
        &self.data[(x * self.dims[1] + y) * self.dims[2] + z]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize, usize)> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, (x, y, z): (usize, usize, usize)) -> &mut T {
        &mut self.data[(x * self.dims[1] + y) * self.dims[2] + z]
    }
}

/// A dense 2-D array with the second axis contiguous.
///
/// Used for per-pencil metadata (the paper's `nnz_mask[x][y]`), decomposed
/// source wavelets (`src_dcmp[t][id]`) and receiver traces (`rec[t][r]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Array2<T> {
    dims: [usize; 2],
    data: Vec<T>,
}

impl<T: Copy + Default> Array2<T> {
    /// Allocate a default-initialised array.
    pub fn zeros(n0: usize, n1: usize) -> Self {
        assert!(n0 > 0 && n1 > 0, "array extents must be non-zero");
        Array2 {
            dims: [n0, n1],
            data: vec![T::default(); n0 * n1],
        }
    }
}

impl<T: Copy> Array2<T> {
    /// Dimensions `[n0, n1]`.
    #[inline]
    pub fn dims(&self) -> [usize; 2] {
        self.dims
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.dims[0] && j < self.dims[1]);
        self.data[i * self.dims[1] + j]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.dims[0] && j < self.dims[1]);
        self.data[i * self.dims[1] + j] = v;
    }

    /// The contiguous row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let n1 = self.dims[1];
        &self.data[i * n1..(i + 1) * n1]
    }

    /// The contiguous mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let n1 = self.dims[1];
        &mut self.data[i * n1..(i + 1) * n1]
    }

    /// Borrow the whole backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the whole backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

impl<T: Copy> std::ops::Index<(usize, usize)> for Array2<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.dims[1] + j]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize)> for Array2<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.dims[1] + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_default() {
        let a: Array3<f32> = Array3::zeros(2, 3, 4);
        assert_eq!(a.len(), 24);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(a.max_abs(), 0.0);
        assert_eq!(a.count_nonzero(), 0);
    }

    #[test]
    fn set_get_roundtrip_and_linearisation() {
        let mut a: Array3<f32> = Array3::zeros(3, 4, 5);
        a.set(1, 2, 3, 7.5);
        assert_eq!(a.get(1, 2, 3), 7.5);
        assert_eq!(a[(1, 2, 3)], 7.5);
        // Row-major, z contiguous.
        assert_eq!(a.idx(1, 2, 3), (4 + 2) * 5 + 3);
        assert_eq!(a.stride_x(), 20);
        assert_eq!(a.stride_y(), 5);
    }

    #[test]
    fn pencils_are_contiguous_z() {
        let mut a: Array3<f32> = Array3::zeros(2, 2, 6);
        for z in 0..6 {
            a.set(1, 0, z, z as f32);
        }
        let p = a.pencil(1, 0);
        assert_eq!(p, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        a.pencil_mut(1, 0)[5] = -1.0;
        assert_eq!(a.get(1, 0, 5), -1.0);
    }

    #[test]
    fn iter_indexed_matches_get() {
        let mut a: Array3<f32> = Array3::zeros(2, 3, 2);
        for (k, (x, y, z)) in a.shape().iter().collect::<Vec<_>>().iter().enumerate() {
            a.set(*x, *y, *z, k as f32);
        }
        for (x, y, z, v) in a.iter_indexed() {
            assert_eq!(v, a.get(x, y, z));
        }
    }

    #[test]
    fn norms_and_diffs() {
        let mut a: Array3<f32> = Array3::zeros(2, 2, 2);
        let mut b: Array3<f32> = Array3::zeros(2, 2, 2);
        a.set(0, 0, 0, 3.0);
        a.set(1, 1, 1, -4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm_l2() - 5.0).abs() < 1e-12);
        b.set(0, 0, 0, 3.0);
        assert_eq!(a.max_abs_diff(&b), 4.0);
        assert!(!a.bit_equal(&b));
        b.set(1, 1, 1, -4.0);
        assert!(a.bit_equal(&b));
    }

    #[test]
    fn bit_equal_distinguishes_signed_zero() {
        let mut a: Array3<f32> = Array3::zeros(1, 1, 1);
        let b: Array3<f32> = Array3::zeros(1, 1, 1);
        a.set(0, 0, 0, -0.0);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(!a.bit_equal(&b), "bit_equal must see -0.0 != +0.0");
    }

    #[test]
    fn full_fills() {
        let a: Array3<f32> = Array3::full(2, 2, 2, 1.5);
        assert!(a.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn array2_rows() {
        let mut a: Array2<i32> = Array2::zeros(3, 4);
        a.set(2, 1, 9);
        assert_eq!(a.get(2, 1), 9);
        assert_eq!(a[(2, 1)], 9);
        assert_eq!(a.row(2), &[0, 9, 0, 0]);
        a.row_mut(0)[3] = 7;
        assert_eq!(a.get(0, 3), 7);
        assert_eq!(a.dims(), [3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_extent() {
        let _: Array3<f32> = Array3::zeros(1, 0, 1);
    }

    #[test]
    fn fill_resets() {
        let mut a: Array3<f32> = Array3::full(2, 2, 2, 3.0);
        a.fill(0.0);
        assert_eq!(a.max_abs(), 0.0);
    }
}
