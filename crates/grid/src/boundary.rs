//! Absorbing boundary layers (sponge damping).
//!
//! The paper's test cases "use zero initial conditions and damping fields
//! with absorbing boundary layers" (§IV.B). We implement the standard sponge
//! approach: a damping coefficient field `damp(x,y,z)` that is zero in the
//! physical interior and ramps up inside a boundary layer of `nbl` points,
//! entering the update as an additional `damp · ∂u/∂t` friction term.

use crate::array::Array3;
use crate::shape::Shape;

/// Per-point damping coefficients for a sponge absorbing layer.
#[derive(Debug, Clone)]
pub struct DampingMask {
    /// Damping coefficient per grid point (non-negative; zero inside).
    pub damp: Array3<f32>,
    nbl: usize,
}

impl DampingMask {
    /// Build a sponge with `nbl` absorbing points on every face.
    ///
    /// The profile follows the common choice (Devito's default style):
    /// `damp(d) = (w/dt_ref) · ((nbl-d)/nbl − sin(2π(nbl-d)/nbl)/(2π))`
    /// normalised so the coefficient is dimensionless per unit time;
    /// here we keep it simple and physically reasonable:
    /// quadratic ramp `damp(d) = coeff · ((nbl − d)/nbl)²` for points at
    /// distance `d < nbl` from the nearest face.
    pub fn sponge(shape: Shape, nbl: usize, coeff: f32) -> Self {
        assert!(coeff >= 0.0, "damping coefficient must be non-negative");
        let mut damp = Array3::from_shape(shape);
        if nbl == 0 {
            return DampingMask { damp, nbl };
        }
        for (x, y, z) in shape.iter() {
            let dx = x.min(shape.nx - 1 - x);
            let dy = y.min(shape.ny - 1 - y);
            let dz = z.min(shape.nz - 1 - z);
            let d = dx.min(dy).min(dz);
            if d < nbl {
                let r = (nbl - d) as f32 / nbl as f32;
                damp.set(x, y, z, coeff * r * r);
            }
        }
        DampingMask { damp, nbl }
    }

    /// No damping at all (free propagation, used by unit tests).
    pub fn none(shape: Shape) -> Self {
        DampingMask {
            damp: Array3::from_shape(shape),
            nbl: 0,
        }
    }

    /// Width of the absorbing layer in grid points.
    pub fn nbl(&self) -> usize {
        self.nbl
    }

    /// Is the point inside the undamped physical interior?
    pub fn is_interior(&self, x: usize, y: usize, z: usize) -> bool {
        self.damp.get(x, y, z) == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_is_undamped() {
        let m = DampingMask::sponge(Shape::cube(16), 4, 0.1);
        assert_eq!(m.damp.get(8, 8, 8), 0.0);
        assert!(m.is_interior(7, 8, 9));
        assert_eq!(m.nbl(), 4);
    }

    #[test]
    fn boundary_is_damped_and_monotone_inward() {
        let m = DampingMask::sponge(Shape::cube(16), 4, 0.1);
        // Corner has the maximum coefficient.
        let corner = m.damp.get(0, 0, 0);
        assert!(corner > 0.0);
        assert!((corner - 0.1).abs() < 1e-7);
        // Moving inward along x the coefficient decreases monotonically.
        let mut prev = f32::INFINITY;
        for x in 0..5 {
            let v = m.damp.get(x, 8, 8);
            assert!(v <= prev, "damping must not increase inward");
            prev = v;
        }
        assert_eq!(m.damp.get(4, 8, 8), 0.0);
    }

    #[test]
    fn symmetry_of_profile() {
        let m = DampingMask::sponge(Shape::cube(12), 3, 1.0);
        for x in 0..12 {
            assert_eq!(m.damp.get(x, 6, 6), m.damp.get(11 - x, 6, 6));
        }
    }

    #[test]
    fn none_has_zero_everywhere() {
        let m = DampingMask::none(Shape::cube(8));
        assert_eq!(m.damp.max_abs(), 0.0);
        assert_eq!(m.nbl(), 0);
    }

    #[test]
    fn zero_nbl_sponge_is_none() {
        let m = DampingMask::sponge(Shape::cube(8), 0, 5.0);
        assert_eq!(m.damp.max_abs(), 0.0);
    }
}
