//! # tempest-par
//!
//! Thin data-parallel execution layer for the tempest workspace — the role
//! OpenMP plays in the paper's generated C code ("OpenMP shared-memory
//! parallelism with dynamic scheduling", §IV.A).
//!
//! Built on a self-contained persistent thread pool (std-only; no external
//! crates, so the workspace builds in hermetic environments), with an
//! explicit escape hatch to force sequential execution: temporal-blocking
//! measurements want a controlled thread count, and tiny problem sizes
//! (unit tests) should not pay fork/join overhead.
//!
//! Thread count control, in priority order:
//! 1. the `TEMPEST_THREADS` environment variable (read once, at pool
//!    creation — this is how the paper's per-thread-count sweeps are made
//!    reproducible across runs);
//! 2. [`std::thread::available_parallelism`].
//!
//! Within a process, [`Policy::Capped`] restricts one dispatch to a subset
//! of the pool (the thread-scaling benchmark sweeps this without
//! re-launching the process).
//!
//! The schedules in `tempest-tiling` hand this crate *lists of independent
//! work items* (space blocks of one timestep, or same-diagonal wave-front
//! tiles); this crate decides how to run them. Scheduling is dynamic: items
//! are claimed from a shared atomic counter, so imbalanced items (clipped
//! boundary tiles vs. interior tiles) do not idle workers.
//!
//! [`run_dataflow`] generalises the flat batch to a *dependency graph*: each
//! node carries an atomic counter of unfinished predecessors, completing a
//! node decrements its successors' counters, and counters reaching zero push
//! the node onto the finishing participant's deque. Other participants steal
//! from the opposite deque end when their own runs dry, so the only global
//! synchronisation is one join at the end of the whole graph — no per-level
//! barriers.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use tempest_obs as obs;

/// Execution policy for a batch of independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Run items one after another on the calling thread.
    Sequential,
    /// Run items on the shared pool (dynamic scheduling, all threads).
    Parallel,
    /// Run items on the shared pool, but on at most this many threads
    /// (including the calling thread). `Capped { threads: 1 }` is
    /// sequential execution.
    Capped {
        /// Maximum number of participating threads.
        threads: usize,
    },
    /// Parallel if at least this many items, else sequential.
    Auto {
        /// Minimum batch size that justifies fork/join overhead.
        min_items: usize,
    },
}

impl Default for Policy {
    fn default() -> Self {
        // One hardware thread ⇒ parallel dispatch is pure overhead.
        if available_threads() <= 1 {
            Policy::Sequential
        } else {
            Policy::Auto { min_items: 4 }
        }
    }
}

/// Number of threads the shared pool uses.
///
/// `TEMPEST_THREADS` (if set to a positive integer) wins over the hardware
/// count. Cached: the hot schedule paths call this once per dispatch, and
/// neither the env lookup nor the `available_parallelism` syscall belongs
/// there.
pub fn available_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("TEMPEST_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

// ---------------------------------------------------------------------------
// Nested-dispatch accounting and scoped thread budgets.
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread is executing items of a published job (as the
    /// publishing caller or as a pool worker helping it).
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
    /// Scoped dispatch cap installed by [`with_thread_budget`];
    /// `usize::MAX` means "no budget set".
    static BUDGET: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Restores a thread-local `Cell` on drop, so panics unwinding through a
/// dispatch (a failing shot solve, a poisoned test) cannot leave the thread
/// marked busy or budget-capped.
struct CellRestore {
    cell: &'static std::thread::LocalKey<Cell<usize>>,
    prev: usize,
}

impl Drop for CellRestore {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.prev));
    }
}

struct DispatchMark {
    prev: bool,
}

impl DispatchMark {
    fn enter() -> Self {
        let prev = IN_DISPATCH.with(|c| c.replace(true));
        DispatchMark { prev }
    }
}

impl Drop for DispatchMark {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_DISPATCH.with(|c| c.set(prev));
    }
}

/// True while the calling thread is executing items of a published job.
fn in_dispatch() -> bool {
    IN_DISPATCH.with(Cell::get)
}

/// The calling thread's scoped dispatch budget: the maximum number of
/// threads (including the caller) any dispatch it makes may use.
/// `usize::MAX` when no [`with_thread_budget`] scope is active.
pub fn thread_budget() -> usize {
    BUDGET.with(Cell::get)
}

/// Run `f` with every dispatch the calling thread makes capped to at most
/// `threads` participants (including the caller), composing with any
/// narrower `Policy::Capped` the dispatch itself carries. Budgets nest: an
/// inner scope can only narrow the outer one, never widen it.
///
/// This is the thread-budget split of shot-over-tile parallelism: a survey
/// worker that owns `k` of the fleet's threads wraps its whole shot solve in
/// `with_thread_budget(k, …)`, so the solve's tile dispatches are published
/// with cap `k` instead of flooding the shared board — and a budget of 1
/// keeps the solve entirely on the worker's own thread. A budget > 1 also
/// re-enables board publication from inside a pool job (nested dispatches
/// without a budget run inline; see `run_batch`).
pub fn with_thread_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let threads = threads.max(1);
    let prev = BUDGET.with(|c| {
        let prev = c.get();
        c.set(prev.min(threads));
        prev
    });
    let _restore = CellRestore {
        cell: &BUDGET,
        prev,
    };
    f()
}

/// Apply the thread-local budget to a dispatch cap.
fn budgeted(cap: usize) -> usize {
    cap.min(thread_budget())
}

/// Should a dispatch with (budgeted) cap `cap` run inline on the calling
/// thread instead of publishing to the board?
///
/// Any dispatch made from inside a running job item runs inline unless a
/// [`with_thread_budget`] scope explicitly grants it more than one thread.
/// Before this rule, a nested `Policy::Parallel` dispatch re-published to
/// the single shared board with an unbounded cap: every parked worker piled
/// onto the innermost job while the outer job's stragglers convoyed behind
/// 1 ms timeout re-checks — oversubscription that grew with nesting depth.
/// Inline execution keeps nested work on the thread that already owns a
/// fleet slot, and counts each item's `ParTasks` exactly once (the inline
/// path is the only accounting site, so an item can never be charged by
/// both the nested job and its outer publication).
fn nested_inline(cap: usize) -> bool {
    in_dispatch() && (thread_budget() == usize::MAX || cap <= 1)
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

/// One published batch: an erased `fn(item_index)` plus dynamic-scheduling
/// state. Workers claim indices from `next` until exhausted.
struct Job {
    /// Type-erased item runner. Points at a closure on the publishing
    /// caller's stack; the caller blocks until `done == n`, which keeps the
    /// referent alive for every dereference (claims check `i < n` first).
    func: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed item.
    next: AtomicUsize,
    /// Item count.
    n: usize,
    /// Completed items; the job is finished when this reaches `n`.
    done: AtomicUsize,
    /// Signalled by the worker completing the last item.
    finished: Mutex<bool>,
    /// Paired with `finished`.
    finished_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the publishing caller provably
// waits (see `run_batch`), and the referent is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim-and-run items until the batch is drained.
    fn help(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: i < n ⇒ the batch is not yet complete ⇒ the caller is
            // still parked in `run_batch`, keeping `func` alive.
            unsafe { (*self.func)(i) };
            obs::add(obs::Counter::ParTasks, 1);
            obs::metrics::heartbeat(1);
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut fin = self.finished.lock().unwrap();
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
    }
}

/// A claimable publication: a flat dynamic-scheduling batch or a
/// dependency-counted dataflow graph.
#[derive(Clone)]
enum Work {
    Batch(Arc<Job>),
    Dataflow(Arc<DataflowJob>),
}

impl Work {
    fn help(&self) {
        match self {
            Work::Batch(job) => job.help(),
            // Pool workers don't charge their idle parks to the
            // `BarrierWait` phase timer — see `DataflowJob::idle_wait`.
            Work::Dataflow(job) => job.help(false),
        }
    }
}

/// Sequence-numbered board contents: the current job and its thread cap.
type Posted = (u64, Option<(Work, usize)>);

/// Publication slot shared between callers and workers.
struct Board {
    /// Monotone sequence number and the current job with its thread cap.
    slot: Mutex<Posted>,
    /// Signalled on publication.
    cv: Condvar,
}

struct Pool {
    board: Arc<Board>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = available_threads().saturating_sub(1);
        let board = Arc::new(Board {
            slot: Mutex::new((0, None)),
            cv: Condvar::new(),
        });
        for id in 0..workers {
            let board = Arc::clone(&board);
            std::thread::Builder::new()
                .name(format!("tempest-par-{id}"))
                .spawn(move || worker_loop(id, board))
                .expect("spawn pool worker");
        }
        Pool { board, workers }
    })
}

fn worker_loop(id: usize, board: Arc<Board>) {
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut slot = board.slot.lock().unwrap();
            loop {
                if slot.0 != last_seen {
                    last_seen = slot.0;
                    break slot.1.clone();
                }
                slot = board.cv.wait(slot).unwrap();
            }
        };
        if let Some((work, cap)) = job {
            // Caller counts as one participant; workers 0..cap-1 join it.
            if id + 1 < cap {
                let _mark = DispatchMark::enter();
                obs::metrics::gauge_add(obs::metrics::Gauge::ActiveWorkers, 1);
                work.help();
                obs::metrics::gauge_add(obs::metrics::Gauge::ActiveWorkers, -1);
            }
        }
    }
}

/// Run `f(0..n)` with up to `cap` threads (including the caller). The
/// caller always participates and returns only when every item completed.
fn run_batch(n: usize, cap: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let cap = budgeted(cap);
    let p = pool();
    // Absolute re-stamp on every dispatch: the pool may predate telemetry
    // being switched on, so the init-time stamp alone is not enough.
    obs::metrics::gauge_set(obs::metrics::Gauge::PoolWorkers, p.workers as i64);
    if n == 1 || cap <= 1 || p.workers == 0 || nested_inline(cap) {
        for i in 0..n {
            f(i);
        }
        obs::add(obs::Counter::ParTasks, n as u64);
        obs::metrics::heartbeat(n as u64);
        return;
    }
    let job = Arc::new(Job {
        // Erase the lifetime: sound because this function does not return
        // until `done == n` (see the wait below) and no item can start
        // after that.
        func: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        },
        next: AtomicUsize::new(0),
        n,
        done: AtomicUsize::new(0),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
    });
    {
        let mut slot = p.board.slot.lock().unwrap();
        slot.0 += 1;
        slot.1 = Some((Work::Batch(Arc::clone(&job)), cap));
        p.board.cv.notify_all();
    }
    obs::add(obs::Counter::ParPublications, 1);
    // The caller works too — and afterwards waits for stragglers.
    {
        let _mark = DispatchMark::enter();
        job.help();
    }
    let wait = obs::start(obs::Phase::BarrierWait);
    let wait_sp = obs::trace::span(obs::trace::SpanKind::BarrierWait, obs::trace::SpanArgs::none());
    let mut fin = job.finished.lock().unwrap();
    while !*fin {
        // The final `help` return races the last worker's notify; the
        // timeout turns a lost wakeup into a bounded re-check, never a hang.
        let (guard, _) = job
            .finished_cv
            .wait_timeout(fin, std::time::Duration::from_millis(1))
            .unwrap();
        fin = guard;
        if job.done.load(Ordering::Acquire) == job.n {
            break;
        }
    }
    drop(fin);
    wait_sp.stop();
    wait.stop();
}

// ---------------------------------------------------------------------------
// Dataflow execution: dependency-counted work stealing.
// ---------------------------------------------------------------------------

/// A static dependency graph for [`run_dataflow`]: node `i` may start once
/// every node in its predecessor list has completed.
///
/// Stored in CSR form over *successors* (the direction the executor walks:
/// finishing a node visits its successors to decrement their counters).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Per-node count of predecessors (the initial dependency counters).
    pred_count: Vec<u32>,
    /// CSR row offsets into `succ`, length `n + 1`.
    succ_off: Vec<u32>,
    /// Concatenated successor lists.
    succ: Vec<u32>,
}

impl DepGraph {
    /// Build from per-node predecessor lists: `preds[i]` holds the nodes
    /// that must complete before node `i` may start. Duplicate entries are
    /// honoured as-is (each decrements once), so callers should dedup.
    ///
    /// Panics when a predecessor index is out of range or a node lists
    /// itself.
    pub fn from_preds(preds: &[Vec<u32>]) -> Self {
        let n = preds.len();
        let mut pred_count = vec![0u32; n];
        let mut succ_len = vec![0u32; n];
        for (i, ps) in preds.iter().enumerate() {
            pred_count[i] = u32::try_from(ps.len()).expect("predecessor list too long");
            for &p in ps {
                assert!(
                    (p as usize) < n && p as usize != i,
                    "invalid predecessor {p} of node {i} (n = {n})"
                );
                succ_len[p as usize] += 1;
            }
        }
        let mut succ_off = vec![0u32; n + 1];
        for i in 0..n {
            succ_off[i + 1] = succ_off[i] + succ_len[i];
        }
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        let mut succ = vec![0u32; succ_off[n] as usize];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succ[cursor[p as usize] as usize] = i as u32;
                cursor[p as usize] += 1;
            }
        }
        DepGraph {
            pred_count,
            succ_off,
            succ,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.pred_count.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.pred_count.is_empty()
    }

    /// Predecessor count of node `i`.
    pub fn pred_count(&self, i: usize) -> usize {
        self.pred_count[i] as usize
    }

    /// Successor list of node `i`.
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }
}

/// One published dataflow graph execution.
///
/// Every participant loops: pop the newest entry of its own deque (LIFO —
/// a tile it just unblocked likely shares halo data still in cache), or
/// steal the oldest entry of another participant's deque (FIFO — take the
/// work its owner would reach last). Completing a node decrements each
/// successor's `pending` counter with `AcqRel`; the Release half publishes
/// the node's writes to whichever thread later claims the successor, and
/// the Acquire half makes the zero-transitioning thread observe every
/// *other* predecessor's writes before it pushes the successor.
struct DataflowJob {
    /// Type-erased node runner; see `Job::func` for the lifetime contract
    /// (the publishing caller's own `help` returns only at `done == n`).
    func: *const (dyn Fn(usize) + Sync),
    /// Node count.
    n: usize,
    /// Remaining-predecessor counters, one per node.
    pending: Vec<AtomicU32>,
    /// CSR successor offsets (copied from the `DepGraph`).
    succ_off: Vec<u32>,
    /// CSR successor lists.
    succ: Vec<u32>,
    /// Per-participant ready deques.
    deques: Vec<Mutex<VecDeque<u32>>>,
    /// Hands out deque slots to joining participants.
    participants: AtomicUsize,
    /// Completed nodes; the graph is finished when this reaches `n`.
    done: AtomicUsize,
    /// Set when `done == n`; idle participants park on it.
    idle: Mutex<bool>,
    /// Paired with `idle`: signalled on every ready push and at completion.
    idle_cv: Condvar,
}

// SAFETY: same contract as `Job` — `func` is only dereferenced while the
// publishing caller provably waits inside `run_dataflow`.
unsafe impl Send for DataflowJob {}
unsafe impl Sync for DataflowJob {}

impl DataflowJob {
    /// Participate until every node of the graph has completed. Because the
    /// return condition is `done == n` (not "nothing left to claim"), the
    /// publishing caller's own `help` doubles as the single join.
    ///
    /// `charge_idle` selects whether idle parks bill the `BarrierWait`
    /// *phase timer*: true for the publishing caller only. `run_batch`
    /// charges exactly one side too (the caller's straggler wait; its pool
    /// workers park on the board unbilled), so the profiled barrier-wait
    /// shares of the diagonal and dataflow executors compare like with
    /// like. Every park still emits a `BarrierWait` *trace span* regardless
    /// — the wait histogram keeps seeing worker idleness.
    fn help(&self, charge_idle: bool) {
        let me = self.participants.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        loop {
            match self.claim(me) {
                Some(i) => self.run_node(me, i as usize),
                None => {
                    if self.done.load(Ordering::Acquire) == self.n {
                        return;
                    }
                    self.idle_wait(charge_idle);
                }
            }
        }
    }

    /// Pop from our own deque (newest first), else steal round-robin from
    /// the other participants (oldest first).
    ///
    /// Stealing prefers victims holding **two or more** ready nodes —
    /// taking an owner's last node strands it at its very next claim, which
    /// on an oversubscribed machine means the victim (often the publishing
    /// caller) parks behind the thief's timeslice. Singletons are still
    /// taken as a second pass: roots are seeded round-robin across every
    /// deque slot, so a node in a slot whose participant never woke must
    /// remain claimable by everyone else.
    fn claim(&self, me: usize) -> Option<u32> {
        if let Some(i) = self.deques[me].lock().unwrap().pop_back() {
            return Some(i);
        }
        let k = self.deques.len();
        for off in 1..k {
            let mut d = self.deques[(me + off) % k].lock().unwrap();
            if d.len() >= 2 {
                let i = d.pop_front().expect("len >= 2");
                drop(d);
                obs::add(obs::Counter::DataflowSteals, 1);
                return Some(i);
            }
        }
        for off in 1..k {
            if let Some(i) = self.deques[(me + off) % k].lock().unwrap().pop_front() {
                obs::add(obs::Counter::DataflowSteals, 1);
                return Some(i);
            }
        }
        None
    }

    fn run_node(&self, me: usize, i: usize) {
        // SAFETY: done < n ⇒ the publishing caller is still parked in its
        // own `help` call inside `run_dataflow`, keeping `func` alive.
        unsafe { (*self.func)(i) };
        obs::add(obs::Counter::ParTasks, 1);
        obs::metrics::heartbeat(1);
        let (s0, s1) = (self.succ_off[i] as usize, self.succ_off[i + 1] as usize);
        let mut pushed = 0u64;
        for &s in &self.succ[s0..s1] {
            if self.pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut d = self.deques[me].lock().unwrap();
                d.push_back(s);
                let surplus = d.len() > 1;
                drop(d);
                pushed += 1;
                // Wake a parked participant only when there is more here
                // than this participant will claim itself next (it pops its
                // own deque back first): waking a thief for a node the
                // pusher is about to run just creates contention — and on
                // an oversubscribed machine, a thief the caller must then
                // wait behind. Parked participants re-check on a bounded
                // timeout anyway, so a skipped wakeup never strands work.
                if surplus {
                    self.idle_cv.notify_one();
                }
            }
        }
        if pushed > 0 {
            obs::add(obs::Counter::DataflowReady, pushed);
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            let mut fin = self.idle.lock().unwrap();
            *fin = true;
            self.idle_cv.notify_all();
        }
    }

    /// Park until a ready push or graph completion. A push can race past a
    /// participant between its failed `claim` and this wait; the timeout
    /// turns that lost wakeup into a bounded re-check, never a hang.
    ///
    /// The timeout backs off exponentially (1 ms → 16 ms): the normal
    /// wake-up path is the `notify` on every ready push, so a longer guard
    /// interval costs nothing when work arrives — but it keeps surplus
    /// participants on an oversubscribed machine from waking on every
    /// timeslice to steal work the running participant would finish sooner
    /// itself.
    fn idle_wait(&self, charge_idle: bool) {
        let wait = charge_idle.then(|| obs::start(obs::Phase::BarrierWait));
        let wait_sp =
            obs::trace::span(obs::trace::SpanKind::BarrierWait, obs::trace::SpanArgs::none());
        let mut timeout_ms = 1u64;
        let mut fin = self.idle.lock().unwrap();
        while !*fin && self.done.load(Ordering::Acquire) != self.n && !self.any_ready() {
            let (guard, timed_out) = self
                .idle_cv
                .wait_timeout(fin, std::time::Duration::from_millis(timeout_ms))
                .unwrap();
            fin = guard;
            if timed_out.timed_out() {
                timeout_ms = (timeout_ms * 2).min(16);
            }
        }
        drop(fin);
        wait_sp.stop();
        if let Some(w) = wait {
            w.stop();
        }
    }

    /// True when any deque holds a ready node. Takes deque locks while
    /// holding `idle` — safe because pushers never take `idle` while
    /// holding a deque lock (completion takes `idle` alone).
    fn any_ready(&self) -> bool {
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }
}

/// Run `f(node)` once for every node of `graph`, never starting a node
/// before all its predecessors returned, with up to `policy`'s thread
/// budget (the caller always participates). Returns only when every node
/// completed — the one join of the whole sweep.
///
/// The graph must be acyclic: nodes on a cycle never become ready, so the
/// sequential path panics and the parallel path would spin on its idle
/// timeout forever. Validate with `legality::check_dataflow_dependencies`
/// (in `tempest-tiling`) when in doubt.
pub fn run_dataflow<F>(policy: Policy, graph: &DepGraph, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    let n = graph.len();
    if n == 0 {
        return;
    }
    let p = pool();
    obs::metrics::gauge_set(obs::metrics::Gauge::PoolWorkers, p.workers as i64);
    let pol = effective(policy, n);
    let cap = budgeted(cap_of(pol));
    if pol == Policy::Sequential || n == 1 || cap <= 1 || p.workers == 0 || nested_inline(cap) {
        run_dataflow_seq(graph, &f);
        return;
    }
    let parts = cap.min(p.workers + 1);
    let job = Arc::new(DataflowJob {
        // Lifetime erased under the same argument as `run_batch`: this
        // function returns only after its own `help` observes `done == n`.
        func: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                &f as *const _,
            )
        },
        n,
        pending: graph.pred_count.iter().map(|&c| AtomicU32::new(c)).collect(),
        succ_off: graph.succ_off.clone(),
        succ: graph.succ.clone(),
        deques: (0..parts).map(|_| Mutex::new(VecDeque::new())).collect(),
        participants: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        idle: Mutex::new(false),
        idle_cv: Condvar::new(),
    });
    // Seed the roots round-robin so participants start with local work
    // instead of all stealing from deque 0.
    let mut roots = 0u64;
    for i in 0..n {
        if graph.pred_count[i] == 0 {
            job.deques[roots as usize % parts]
                .lock()
                .unwrap()
                .push_back(i as u32);
            roots += 1;
        }
    }
    assert!(roots > 0, "dataflow graph has no roots (dependency cycle)");
    obs::add(obs::Counter::DataflowReady, roots);
    {
        let mut slot = p.board.slot.lock().unwrap();
        slot.0 += 1;
        slot.1 = Some((Work::Dataflow(Arc::clone(&job)), cap));
        p.board.cv.notify_all();
    }
    obs::add(obs::Counter::ParPublications, 1);
    // The caller works too; for dataflow, `help` returning *is* the join,
    // and the caller is the one participant whose idle bills `BarrierWait`.
    {
        let _mark = DispatchMark::enter();
        job.help(true);
    }
    debug_assert_eq!(job.done.load(Ordering::Acquire), n);
}

/// Sequential dataflow: a Kahn worklist in FIFO order. Emits the same
/// deterministic counters as the parallel path (`ParTasks` and
/// `DataflowReady` both equal the node count — every node becomes ready
/// exactly once), so exact-count oracles agree across policies.
fn run_dataflow_seq(graph: &DepGraph, f: &dyn Fn(usize)) {
    let n = graph.len();
    let mut pending = graph.pred_count.clone();
    let mut ready: VecDeque<u32> = (0..n as u32).filter(|&i| pending[i as usize] == 0).collect();
    let mut ran = 0usize;
    while let Some(i) = ready.pop_front() {
        f(i as usize);
        ran += 1;
        for &s in graph.succs(i as usize) {
            pending[s as usize] -= 1;
            if pending[s as usize] == 0 {
                ready.push_back(s);
            }
        }
    }
    assert_eq!(
        ran, n,
        "dataflow graph has a dependency cycle: only {ran} of {n} nodes reachable"
    );
    obs::add(obs::Counter::ParTasks, ran as u64);
    obs::metrics::heartbeat(ran as u64);
    obs::add(obs::Counter::DataflowReady, ran as u64);
}

/// Resolve a policy to Sequential / a thread cap for `n` items.
fn effective(policy: Policy, n: usize) -> Policy {
    match policy {
        Policy::Auto { min_items } => {
            if n >= min_items && available_threads() > 1 {
                Policy::Parallel
            } else {
                Policy::Sequential
            }
        }
        Policy::Capped { threads } if threads <= 1 => Policy::Sequential,
        p => p,
    }
}

fn cap_of(policy: Policy) -> usize {
    match policy {
        Policy::Capped { threads } => threads,
        _ => usize::MAX,
    }
}

/// Apply `f` to every item, under the given policy.
pub fn for_each<T, F>(policy: Policy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => {
            items.iter().for_each(&f);
            obs::add(obs::Counter::ParTasks, items.len() as u64);
            obs::metrics::heartbeat(items.len() as u64);
        }
        p => run_batch(items.len(), cap_of(p), &|i| f(&items[i])),
    }
}

/// Apply `f` to every index in `0..n`, under the given policy.
pub fn for_each_index<F>(policy: Policy, n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match effective(policy, n) {
        Policy::Sequential => {
            (0..n).for_each(f);
            obs::add(obs::Counter::ParTasks, n as u64);
            obs::metrics::heartbeat(n as u64);
        }
        p => run_batch(n, cap_of(p), &f),
    }
}

/// Apply `f` to disjoint mutable chunks of `data` of length `chunk`.
///
/// The per-chunk closure receives `(chunk_index, chunk_slice)`.
pub fn for_each_chunk_mut<T, F>(policy: Policy, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be non-zero");
    let len = data.len();
    let n = len.div_ceil(chunk);
    match effective(policy, n) {
        Policy::Sequential => {
            data.chunks_mut(chunk)
                .enumerate()
                .for_each(|(i, c)| f(i, c));
            obs::add(obs::Counter::ParTasks, n as u64);
            obs::metrics::heartbeat(n as u64);
        }
        p => {
            let base = data.as_mut_ptr() as usize;
            run_batch(n, cap_of(p), &|i| {
                let start = i * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: chunk i covers [start, end) — indices are claimed
                // at most once, so the slices are disjoint.
                let s = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f(i, s);
            });
        }
    }
}

/// Map items and collect results in input order.
pub fn map_collect<T, U, F>(policy: Policy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => {
            let out: Vec<U> = items.iter().map(f).collect();
            obs::add(obs::Counter::ParTasks, out.len() as u64);
            obs::metrics::heartbeat(out.len() as u64);
            out
        }
        p => {
            let n = items.len();
            let mut out: Vec<std::mem::MaybeUninit<U>> = Vec::with_capacity(n);
            // SAFETY: every slot in 0..n is written exactly once below
            // before assume-init.
            unsafe { out.set_len(n) };
            let base = out.as_mut_ptr() as usize;
            run_batch(n, cap_of(p), &|i| {
                let v = f(&items[i]);
                // SAFETY: slot i is owned by the claimant of index i.
                unsafe {
                    (base as *mut std::mem::MaybeUninit<U>)
                        .add(i)
                        .write(std::mem::MaybeUninit::new(v));
                }
            });
            // SAFETY: run_batch returns only after all n writes completed.
            unsafe {
                let ptr = out.as_mut_ptr() as *mut U;
                let cap = out.capacity();
                std::mem::forget(out);
                Vec::from_raw_parts(ptr, n, cap)
            }
        }
    }
}

/// A monotone counter shared across worker threads (progress accounting in
/// long benchmark sweeps).
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
}

impl Progress {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` completed items; returns the new total.
    pub fn add(&self, n: usize) -> usize {
        self.done.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Completed items so far.
    pub fn get(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_all_items_once() {
        let items: Vec<u64> = (0..100).collect();
        for policy in [
            Policy::Sequential,
            Policy::Parallel,
            Policy::Capped { threads: 2 },
            Policy::default(),
        ] {
            let sum = AtomicU64::new(0);
            for_each(policy, &items, |&v| {
                sum.fetch_add(v, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950);
        }
    }

    #[test]
    fn for_each_index_covers_range() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(Policy::Parallel, 50, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let mut data = vec![0u32; 103];
        for_each_chunk_mut(Policy::Parallel, &mut data, 10, |i, c| {
            for v in c.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (k / 10) as u32);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<i32> = (0..64).collect();
        let out = map_collect(Policy::Parallel, &items, |&v| v * v);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as i32) * (i as i32));
        }
    }

    #[test]
    fn auto_policy_small_batch_is_sequential() {
        assert_eq!(
            effective(Policy::Auto { min_items: 10 }, 3),
            Policy::Sequential
        );
    }

    #[test]
    fn capped_one_is_sequential() {
        assert_eq!(
            effective(Policy::Capped { threads: 1 }, 100),
            Policy::Sequential
        );
    }

    #[test]
    fn repeated_dispatches_are_stable() {
        // Exercises job publication/retirement across many rounds — the
        // path the per-slab wavefront barriers hit.
        let items: Vec<usize> = (0..37).collect();
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            for_each(Policy::Parallel, &items, |&v| {
                sum.fetch_add(v + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 666 + 37 * round);
        }
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let total = AtomicUsize::new(0);
        for_each(Policy::Parallel, &outer, |_| {
            let inner: Vec<usize> = (0..8).collect();
            for_each(Policy::Parallel, &inner, |&v| {
                total.fetch_add(v, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn concurrent_top_level_dispatches() {
        // Two threads race independent batches through the shared board;
        // each caller participates, so both complete even if no worker
        // helps either.
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let items: Vec<usize> = (0..100).collect();
                    for _ in 0..50 {
                        let sum = AtomicUsize::new(0);
                        for_each(Policy::Parallel, &items, |&v| {
                            sum.fetch_add(v, Ordering::Relaxed);
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 4950);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Layered synthetic DAG: node `i` depends on a few nodes from the
    /// previous layer. Deterministic, with fan-in, fan-out and multiple
    /// roots — shaped like a wavefront tile graph.
    fn layered_dag(layers: usize, width: usize) -> Vec<Vec<u32>> {
        let n = layers * width;
        let mut preds = vec![Vec::new(); n];
        for l in 1..layers {
            for w in 0..width {
                let i = l * width + w;
                for dw in [0usize, 1, width - 1] {
                    let p = ((l - 1) * width + (w + dw) % width) as u32;
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                    }
                }
            }
        }
        preds
    }

    /// Run the graph and assert every node ran exactly once, strictly after
    /// all of its predecessors.
    fn check_dataflow(policy: Policy, preds: &[Vec<u32>]) {
        let graph = DepGraph::from_preds(preds);
        let done: Vec<AtomicUsize> = (0..preds.len()).map(|_| AtomicUsize::new(0)).collect();
        run_dataflow(policy, &graph, |i| {
            for &p in &preds[i] {
                assert_eq!(
                    done[p as usize].load(Ordering::Acquire),
                    1,
                    "node {i} started before predecessor {p} finished"
                );
            }
            done[i].fetch_add(1, Ordering::Release);
        });
        assert!(done.iter().all(|d| d.load(Ordering::Acquire) == 1));
    }

    #[test]
    fn dep_graph_csr_is_consistent() {
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let g = DepGraph::from_preds(&preds);
        assert_eq!(g.len(), 4);
        assert_eq!(g.pred_count(0), 0);
        assert_eq!(g.pred_count(3), 2);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.succs(1), &[3]);
        assert_eq!(g.succs(2), &[3]);
        assert_eq!(g.succs(3), &[] as &[u32]);
    }

    #[test]
    fn dataflow_respects_dependencies_across_policies() {
        let preds = layered_dag(12, 16);
        for policy in [
            Policy::Sequential,
            Policy::Parallel,
            Policy::Capped { threads: 2 },
            Policy::Capped { threads: 4 },
            Policy::default(),
        ] {
            check_dataflow(policy, &preds);
        }
    }

    #[test]
    fn dataflow_chain_is_fully_serial() {
        // Worst case for stealing: exactly one node ready at any moment.
        let preds: Vec<Vec<u32>> = (0..64)
            .map(|i| if i == 0 { vec![] } else { vec![i as u32 - 1] })
            .collect();
        check_dataflow(Policy::Parallel, &preds);
    }

    #[test]
    fn dataflow_trivial_graphs() {
        check_dataflow(Policy::Parallel, &[]);
        check_dataflow(Policy::Parallel, &[vec![]]);
        // All-roots graph (no edges at all) degenerates to a flat batch.
        check_dataflow(Policy::Parallel, &vec![vec![]; 40]);
    }

    #[test]
    fn dataflow_repeated_dispatches_are_stable() {
        let preds = layered_dag(4, 8);
        for _ in 0..100 {
            check_dataflow(Policy::Parallel, &preds);
        }
    }

    #[test]
    fn dataflow_nested_batch_dispatch_does_not_deadlock() {
        let preds = layered_dag(3, 4);
        let graph = DepGraph::from_preds(&preds);
        let total = AtomicUsize::new(0);
        run_dataflow(Policy::Parallel, &graph, |_| {
            let inner: Vec<usize> = (0..8).collect();
            for_each(Policy::Parallel, &inner, |&v| {
                total.fetch_add(v, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12 * 28);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn dataflow_cycle_is_rejected_sequentially() {
        let graph = DepGraph::from_preds(&[vec![1], vec![0], vec![]]);
        run_dataflow(Policy::Sequential, &graph, |_| {});
    }

    #[test]
    #[should_panic(expected = "invalid predecessor")]
    fn dep_graph_rejects_self_edge() {
        let _ = DepGraph::from_preds(&[vec![0]]);
    }

    /// Atomic high-water mark of concurrently running items.
    struct HighWater {
        live: AtomicUsize,
        max: AtomicUsize,
    }

    impl HighWater {
        fn new() -> Self {
            HighWater {
                live: AtomicUsize::new(0),
                max: AtomicUsize::new(0),
            }
        }

        fn enter(&self) {
            let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
            self.max.fetch_max(now, Ordering::SeqCst);
        }

        fn leave(&self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }

        fn peak(&self) -> usize {
            self.max.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn nested_oversubscribed_configuration_completes_under_bound() {
        // Regression: a fleet of shot-style workers each publishing inner
        // Parallel batches and dataflow graphs used to re-publish to the one
        // shared board with an unbounded cap, convoying the outer batch's
        // stragglers behind 1 ms timeout re-checks. Nested dispatch now runs
        // inline, so this completes promptly — and every item still runs
        // exactly once.
        let t0 = std::time::Instant::now();
        let outer: Vec<usize> = (0..16).collect();
        let counts: Vec<AtomicUsize> = (0..16 * 64).map(|_| AtomicUsize::new(0)).collect();
        for round in 0..8 {
            for_each(Policy::Parallel, &outer, |&o| {
                // Inner flat batch.
                for_each_index(Policy::Parallel, 64, |i| {
                    if round == 0 {
                        counts[o * 64 + i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                // Inner dataflow graph from the same worker.
                let preds = layered_dag(4, 8);
                let graph = DepGraph::from_preds(&preds);
                run_dataflow(Policy::Parallel, &graph, |_| {});
            });
        }
        assert!(
            counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
            "nested items must run exactly once"
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "nested dispatch took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn thread_budget_caps_dispatch_concurrency() {
        // A budget of 2 bounds every dispatch in the scope to two
        // participants, even when the dispatch itself asks for Parallel.
        let hw = HighWater::new();
        with_thread_budget(2, || {
            for_each_index(Policy::Parallel, 256, |_| {
                hw.enter();
                std::thread::sleep(std::time::Duration::from_micros(50));
                hw.leave();
            });
        });
        assert!(hw.peak() >= 1);
        assert!(hw.peak() <= 2, "budget 2 exceeded: peak {}", hw.peak());
        // Budgets compose downwards: an inner wider budget cannot widen.
        with_thread_budget(1, || {
            assert_eq!(thread_budget(), 1);
            with_thread_budget(8, || assert_eq!(thread_budget(), 1));
        });
        assert_eq!(thread_budget(), usize::MAX);
    }

    #[test]
    fn thread_budget_restores_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_budget(3, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(thread_budget(), usize::MAX, "budget leaked across unwind");
    }

    #[test]
    fn budgeted_nested_dispatch_stays_within_grant() {
        // A worker granted an explicit budget may publish nested work; the
        // batch still covers every item exactly once.
        let counts: Vec<AtomicUsize> = (0..4 * 64).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(Policy::Parallel, 4, |o| {
            with_thread_budget(2, || {
                for_each_index(Policy::Parallel, 64, |i| {
                    counts[o * 64 + i].fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn ungranted_nested_dispatch_runs_inline() {
        // Without an explicit budget, a nested Parallel dispatch stays on
        // the thread that owns the outer item: per-outer-item concurrency
        // never exceeds one.
        let hws: Vec<HighWater> = (0..8).map(|_| HighWater::new()).collect();
        for_each_index(Policy::Parallel, 8, |o| {
            for_each_index(Policy::Parallel, 64, |_| {
                hws[o].enter();
                std::thread::sleep(std::time::Duration::from_micros(10));
                hws[o].leave();
            });
        });
        for hw in &hws {
            assert_eq!(hw.peak(), 1, "nested batch escaped its owning thread");
        }
    }

    #[test]
    fn progress_accumulates() {
        let p = Progress::new();
        assert_eq!(p.add(3), 3);
        assert_eq!(p.add(4), 7);
        assert_eq!(p.get(), 7);
    }

    #[test]
    fn available_threads_positive_and_cached() {
        assert!(available_threads() >= 1);
        assert_eq!(available_threads(), available_threads());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_rejected() {
        let mut d = [0u8; 4];
        for_each_chunk_mut(Policy::Sequential, &mut d, 0, |_, _| {});
    }
}
