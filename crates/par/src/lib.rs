//! # tempest-par
//!
//! Thin data-parallel execution layer for the tempest workspace — the role
//! OpenMP plays in the paper's generated C code ("OpenMP shared-memory
//! parallelism with dynamic scheduling", §IV.A).
//!
//! Built on [rayon]'s work-stealing pool, with an explicit escape hatch to
//! force sequential execution: temporal-blocking measurements want a
//! controlled thread count, and tiny problem sizes (unit tests) should not
//! pay fork/join overhead.
//!
//! The schedules in `tempest-tiling` hand this crate *lists of independent
//! work items* (space blocks of one timestep, or same-diagonal wave-front
//! tiles); this crate decides how to run them.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

/// Execution policy for a batch of independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Run items one after another on the calling thread.
    Sequential,
    /// Run items on the global rayon pool (dynamic scheduling).
    Parallel,
    /// Parallel if at least this many items, else sequential.
    Auto {
        /// Minimum batch size that justifies fork/join overhead.
        min_items: usize,
    },
}

impl Default for Policy {
    fn default() -> Self {
        // One hardware thread ⇒ parallel dispatch is pure overhead.
        if available_threads() <= 1 {
            Policy::Sequential
        } else {
            Policy::Auto { min_items: 4 }
        }
    }
}

/// Number of threads the global pool will use.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, under the given policy.
pub fn for_each<T, F>(policy: Policy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => items.iter().for_each(&f),
        _ => items.par_iter().for_each(f),
    }
}

/// Apply `f` to every index in `0..n`, under the given policy.
pub fn for_each_index<F>(policy: Policy, n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match effective(policy, n) {
        Policy::Sequential => (0..n).for_each(f),
        _ => (0..n).into_par_iter().for_each(f),
    }
}

/// Apply `f` to disjoint mutable chunks of `data` of length `chunk`.
///
/// The per-chunk closure receives `(chunk_index, chunk_slice)`.
pub fn for_each_chunk_mut<T, F>(policy: Policy, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be non-zero");
    let n = data.len().div_ceil(chunk);
    match effective(policy, n) {
        Policy::Sequential => data
            .chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, c)| f(i, c)),
        _ => data
            .par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, c)| f(i, c)),
    }
}

/// Map items and collect results in input order.
pub fn map_collect<T, U, F>(policy: Policy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => items.iter().map(f).collect(),
        _ => items.par_iter().map(f).collect(),
    }
}

fn effective(policy: Policy, n: usize) -> Policy {
    match policy {
        Policy::Auto { min_items } => {
            if n >= min_items && available_threads() > 1 {
                Policy::Parallel
            } else {
                Policy::Sequential
            }
        }
        p => p,
    }
}

/// A monotone counter shared across worker threads (progress accounting in
/// long benchmark sweeps).
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
}

impl Progress {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` completed items; returns the new total.
    pub fn add(&self, n: usize) -> usize {
        self.done.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Completed items so far.
    pub fn get(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_all_items_once() {
        let items: Vec<u64> = (0..100).collect();
        for policy in [Policy::Sequential, Policy::Parallel, Policy::default()] {
            let sum = AtomicU64::new(0);
            for_each(policy, &items, |&v| {
                sum.fetch_add(v, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950);
        }
    }

    #[test]
    fn for_each_index_covers_range() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(Policy::Parallel, 50, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let mut data = vec![0u32; 103];
        for_each_chunk_mut(Policy::Parallel, &mut data, 10, |i, c| {
            for v in c.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (k / 10) as u32);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<i32> = (0..64).collect();
        let out = map_collect(Policy::Parallel, &items, |&v| v * v);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as i32) * (i as i32));
        }
    }

    #[test]
    fn auto_policy_small_batch_is_sequential() {
        assert_eq!(
            effective(Policy::Auto { min_items: 10 }, 3),
            Policy::Sequential
        );
    }

    #[test]
    fn progress_accumulates() {
        let p = Progress::new();
        assert_eq!(p.add(3), 3);
        assert_eq!(p.add(4), 7);
        assert_eq!(p.get(), 7);
    }

    #[test]
    fn available_threads_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_rejected() {
        let mut d = [0u8; 4];
        for_each_chunk_mut(Policy::Sequential, &mut d, 0, |_, _| {});
    }
}
