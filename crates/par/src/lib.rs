//! # tempest-par
//!
//! Thin data-parallel execution layer for the tempest workspace — the role
//! OpenMP plays in the paper's generated C code ("OpenMP shared-memory
//! parallelism with dynamic scheduling", §IV.A).
//!
//! Built on a self-contained persistent thread pool (std-only; no external
//! crates, so the workspace builds in hermetic environments), with an
//! explicit escape hatch to force sequential execution: temporal-blocking
//! measurements want a controlled thread count, and tiny problem sizes
//! (unit tests) should not pay fork/join overhead.
//!
//! Thread count control, in priority order:
//! 1. the `TEMPEST_THREADS` environment variable (read once, at pool
//!    creation — this is how the paper's per-thread-count sweeps are made
//!    reproducible across runs);
//! 2. [`std::thread::available_parallelism`].
//!
//! Within a process, [`Policy::Capped`] restricts one dispatch to a subset
//! of the pool (the thread-scaling benchmark sweeps this without
//! re-launching the process).
//!
//! The schedules in `tempest-tiling` hand this crate *lists of independent
//! work items* (space blocks of one timestep, or same-diagonal wave-front
//! tiles); this crate decides how to run them. Scheduling is dynamic: items
//! are claimed from a shared atomic counter, so imbalanced items (clipped
//! boundary tiles vs. interior tiles) do not idle workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use tempest_obs as obs;

/// Execution policy for a batch of independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Run items one after another on the calling thread.
    Sequential,
    /// Run items on the shared pool (dynamic scheduling, all threads).
    Parallel,
    /// Run items on the shared pool, but on at most this many threads
    /// (including the calling thread). `Capped { threads: 1 }` is
    /// sequential execution.
    Capped {
        /// Maximum number of participating threads.
        threads: usize,
    },
    /// Parallel if at least this many items, else sequential.
    Auto {
        /// Minimum batch size that justifies fork/join overhead.
        min_items: usize,
    },
}

impl Default for Policy {
    fn default() -> Self {
        // One hardware thread ⇒ parallel dispatch is pure overhead.
        if available_threads() <= 1 {
            Policy::Sequential
        } else {
            Policy::Auto { min_items: 4 }
        }
    }
}

/// Number of threads the shared pool uses.
///
/// `TEMPEST_THREADS` (if set to a positive integer) wins over the hardware
/// count. Cached: the hot schedule paths call this once per dispatch, and
/// neither the env lookup nor the `available_parallelism` syscall belongs
/// there.
pub fn available_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("TEMPEST_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

/// One published batch: an erased `fn(item_index)` plus dynamic-scheduling
/// state. Workers claim indices from `next` until exhausted.
struct Job {
    /// Type-erased item runner. Points at a closure on the publishing
    /// caller's stack; the caller blocks until `done == n`, which keeps the
    /// referent alive for every dereference (claims check `i < n` first).
    func: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed item.
    next: AtomicUsize,
    /// Item count.
    n: usize,
    /// Completed items; the job is finished when this reaches `n`.
    done: AtomicUsize,
    /// Signalled by the worker completing the last item.
    finished: Mutex<bool>,
    /// Paired with `finished`.
    finished_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the publishing caller provably
// waits (see `run_batch`), and the referent is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim-and-run items until the batch is drained.
    fn help(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: i < n ⇒ the batch is not yet complete ⇒ the caller is
            // still parked in `run_batch`, keeping `func` alive.
            unsafe { (*self.func)(i) };
            obs::add(obs::Counter::ParTasks, 1);
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut fin = self.finished.lock().unwrap();
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
    }
}

/// Sequence-numbered board contents: the current job and its thread cap.
type Posted = (u64, Option<(Arc<Job>, usize)>);

/// Publication slot shared between callers and workers.
struct Board {
    /// Monotone sequence number and the current job with its thread cap.
    slot: Mutex<Posted>,
    /// Signalled on publication.
    cv: Condvar,
}

struct Pool {
    board: Arc<Board>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = available_threads().saturating_sub(1);
        let board = Arc::new(Board {
            slot: Mutex::new((0, None)),
            cv: Condvar::new(),
        });
        for id in 0..workers {
            let board = Arc::clone(&board);
            std::thread::Builder::new()
                .name(format!("tempest-par-{id}"))
                .spawn(move || worker_loop(id, board))
                .expect("spawn pool worker");
        }
        Pool { board, workers }
    })
}

fn worker_loop(id: usize, board: Arc<Board>) {
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut slot = board.slot.lock().unwrap();
            loop {
                if slot.0 != last_seen {
                    last_seen = slot.0;
                    break slot.1.clone();
                }
                slot = board.cv.wait(slot).unwrap();
            }
        };
        if let Some((job, cap)) = job {
            // Caller counts as one participant; workers 0..cap-1 join it.
            if id + 1 < cap {
                job.help();
            }
        }
    }
}

/// Run `f(0..n)` with up to `cap` threads (including the caller). The
/// caller always participates and returns only when every item completed.
fn run_batch(n: usize, cap: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let p = pool();
    if n == 1 || cap <= 1 || p.workers == 0 {
        for i in 0..n {
            f(i);
        }
        obs::add(obs::Counter::ParTasks, n as u64);
        return;
    }
    let job = Arc::new(Job {
        // Erase the lifetime: sound because this function does not return
        // until `done == n` (see the wait below) and no item can start
        // after that.
        func: unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        },
        next: AtomicUsize::new(0),
        n,
        done: AtomicUsize::new(0),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
    });
    {
        let mut slot = p.board.slot.lock().unwrap();
        slot.0 += 1;
        slot.1 = Some((Arc::clone(&job), cap));
        p.board.cv.notify_all();
    }
    obs::add(obs::Counter::ParPublications, 1);
    // The caller works too — and afterwards waits for stragglers.
    job.help();
    let wait = obs::start(obs::Phase::BarrierWait);
    let wait_sp = obs::trace::span(obs::trace::SpanKind::BarrierWait, obs::trace::SpanArgs::none());
    let mut fin = job.finished.lock().unwrap();
    while !*fin {
        // The final `help` return races the last worker's notify; the
        // timeout turns a lost wakeup into a bounded re-check, never a hang.
        let (guard, _) = job
            .finished_cv
            .wait_timeout(fin, std::time::Duration::from_millis(1))
            .unwrap();
        fin = guard;
        if job.done.load(Ordering::Acquire) == job.n {
            break;
        }
    }
    drop(fin);
    wait_sp.stop();
    wait.stop();
}

/// Resolve a policy to Sequential / a thread cap for `n` items.
fn effective(policy: Policy, n: usize) -> Policy {
    match policy {
        Policy::Auto { min_items } => {
            if n >= min_items && available_threads() > 1 {
                Policy::Parallel
            } else {
                Policy::Sequential
            }
        }
        Policy::Capped { threads } if threads <= 1 => Policy::Sequential,
        p => p,
    }
}

fn cap_of(policy: Policy) -> usize {
    match policy {
        Policy::Capped { threads } => threads,
        _ => usize::MAX,
    }
}

/// Apply `f` to every item, under the given policy.
pub fn for_each<T, F>(policy: Policy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => {
            items.iter().for_each(&f);
            obs::add(obs::Counter::ParTasks, items.len() as u64);
        }
        p => run_batch(items.len(), cap_of(p), &|i| f(&items[i])),
    }
}

/// Apply `f` to every index in `0..n`, under the given policy.
pub fn for_each_index<F>(policy: Policy, n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match effective(policy, n) {
        Policy::Sequential => {
            (0..n).for_each(f);
            obs::add(obs::Counter::ParTasks, n as u64);
        }
        p => run_batch(n, cap_of(p), &f),
    }
}

/// Apply `f` to disjoint mutable chunks of `data` of length `chunk`.
///
/// The per-chunk closure receives `(chunk_index, chunk_slice)`.
pub fn for_each_chunk_mut<T, F>(policy: Policy, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be non-zero");
    let len = data.len();
    let n = len.div_ceil(chunk);
    match effective(policy, n) {
        Policy::Sequential => {
            data.chunks_mut(chunk)
                .enumerate()
                .for_each(|(i, c)| f(i, c));
            obs::add(obs::Counter::ParTasks, n as u64);
        }
        p => {
            let base = data.as_mut_ptr() as usize;
            run_batch(n, cap_of(p), &|i| {
                let start = i * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: chunk i covers [start, end) — indices are claimed
                // at most once, so the slices are disjoint.
                let s = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                };
                f(i, s);
            });
        }
    }
}

/// Map items and collect results in input order.
pub fn map_collect<T, U, F>(policy: Policy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    match effective(policy, items.len()) {
        Policy::Sequential => {
            let out: Vec<U> = items.iter().map(f).collect();
            obs::add(obs::Counter::ParTasks, out.len() as u64);
            out
        }
        p => {
            let n = items.len();
            let mut out: Vec<std::mem::MaybeUninit<U>> = Vec::with_capacity(n);
            // SAFETY: every slot in 0..n is written exactly once below
            // before assume-init.
            unsafe { out.set_len(n) };
            let base = out.as_mut_ptr() as usize;
            run_batch(n, cap_of(p), &|i| {
                let v = f(&items[i]);
                // SAFETY: slot i is owned by the claimant of index i.
                unsafe {
                    (base as *mut std::mem::MaybeUninit<U>)
                        .add(i)
                        .write(std::mem::MaybeUninit::new(v));
                }
            });
            // SAFETY: run_batch returns only after all n writes completed.
            unsafe {
                let ptr = out.as_mut_ptr() as *mut U;
                let cap = out.capacity();
                std::mem::forget(out);
                Vec::from_raw_parts(ptr, n, cap)
            }
        }
    }
}

/// A monotone counter shared across worker threads (progress accounting in
/// long benchmark sweeps).
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
}

impl Progress {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` completed items; returns the new total.
    pub fn add(&self, n: usize) -> usize {
        self.done.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Completed items so far.
    pub fn get(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_all_items_once() {
        let items: Vec<u64> = (0..100).collect();
        for policy in [
            Policy::Sequential,
            Policy::Parallel,
            Policy::Capped { threads: 2 },
            Policy::default(),
        ] {
            let sum = AtomicU64::new(0);
            for_each(policy, &items, |&v| {
                sum.fetch_add(v, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950);
        }
    }

    #[test]
    fn for_each_index_covers_range() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(Policy::Parallel, 50, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let mut data = vec![0u32; 103];
        for_each_chunk_mut(Policy::Parallel, &mut data, 10, |i, c| {
            for v in c.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (k / 10) as u32);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<i32> = (0..64).collect();
        let out = map_collect(Policy::Parallel, &items, |&v| v * v);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as i32) * (i as i32));
        }
    }

    #[test]
    fn auto_policy_small_batch_is_sequential() {
        assert_eq!(
            effective(Policy::Auto { min_items: 10 }, 3),
            Policy::Sequential
        );
    }

    #[test]
    fn capped_one_is_sequential() {
        assert_eq!(
            effective(Policy::Capped { threads: 1 }, 100),
            Policy::Sequential
        );
    }

    #[test]
    fn repeated_dispatches_are_stable() {
        // Exercises job publication/retirement across many rounds — the
        // path the per-slab wavefront barriers hit.
        let items: Vec<usize> = (0..37).collect();
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            for_each(Policy::Parallel, &items, |&v| {
                sum.fetch_add(v + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 666 + 37 * round);
        }
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let total = AtomicUsize::new(0);
        for_each(Policy::Parallel, &outer, |_| {
            let inner: Vec<usize> = (0..8).collect();
            for_each(Policy::Parallel, &inner, |&v| {
                total.fetch_add(v, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn concurrent_top_level_dispatches() {
        // Two threads race independent batches through the shared board;
        // each caller participates, so both complete even if no worker
        // helps either.
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let items: Vec<usize> = (0..100).collect();
                    for _ in 0..50 {
                        let sum = AtomicUsize::new(0);
                        for_each(Policy::Parallel, &items, |&v| {
                            sum.fetch_add(v, Ordering::Relaxed);
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 4950);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn progress_accumulates() {
        let p = Progress::new();
        assert_eq!(p.add(3), 3);
        assert_eq!(p.add(4), 7);
        assert_eq!(p.get(), 7);
    }

    #[test]
    fn available_threads_positive_and_cached() {
        assert!(available_threads() >= 1);
        assert_eq!(available_threads(), available_threads());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_rejected() {
        let mut d = [0u8; 4];
        for_each_chunk_mut(Policy::Sequential, &mut d, 0, |_, _| {});
    }
}
