//! The paper's source-injection precomputation scheme (§II.A).
//!
//! Off-the-grid sources are turned into grid-aligned point sources in four
//! steps (Fig. 5):
//!
//! 1. find the affected grid points — either by *probing* an empty grid with
//!    one injection step (Listing 2, [`SourcePrecompute::build_probed`]) or
//!    analytically from the interpolation footprints
//!    ([`SourcePrecompute::build`]); the two agree (tested);
//! 2. build the binary source mask `SM` (Fig. 5b) and the unique-ID volume
//!    `SID` (Fig. 5c) — ascending IDs in canonical grid order;
//! 3. decompose the sources' wavelets into per-affected-point time series
//!    `src_dcmp[t][id] = Σ_s w(s→id) · src[t][s]` (Listing 3);
//! 4. expose pencil views of `SM`/`SID`/`src_dcmp` so the stencil kernels can
//!    *fuse* injection into the dense loop nest (Listing 4) at the right
//!    space-time coordinates of any — including temporally blocked —
//!    schedule.
//!
//! The iteration-space *compression* of Listing 5 lives in
//! [`crate::compressed`].

use crate::interp::trilinear_all;
use crate::points::SparsePoints;
use tempest_grid::{Array2, Array3, Domain, Field, Range3};

/// Grid-aligned, precomputed source injection data.
#[derive(Debug, Clone)]
pub struct SourcePrecompute {
    /// Binary source mask `SM` (Fig. 5b): 1 where a source affects the point.
    pub sm: Array3<u8>,
    /// Unique-ID volume `SID` (Fig. 5c): ascending id per affected point,
    /// `-1` elsewhere.
    pub sid: Array3<i32>,
    /// Affected grid points in id order (canonical grid order).
    pub points: Vec<[usize; 3]>,
    /// Decomposed wavelets `src_dcmp[t][id]` (Listing 3 / Fig. 5d).
    pub src_dcmp: Array2<f32>,
}

impl SourcePrecompute {
    /// Analytic construction: the affected set is the union of the non-zero
    /// trilinear footprints.
    pub fn build(domain: &Domain, sources: &SparsePoints, wavelets: &Array2<f32>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        assert_eq!(
            wavelets.dims()[1],
            sources.len(),
            "wavelet matrix must have one column per source"
        );
        let stencils = trilinear_all(domain, sources);
        let mut affected: Vec<[usize; 3]> = stencils
            .iter()
            .flat_map(|s| s.nonzero().map(|(c, _)| c))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        Self::assemble(domain, sources, wavelets, affected)
    }

    /// Probe construction (Listing 2): inject into an empty grid until every
    /// source has contributed, then read back the non-zero support.
    ///
    /// To guard against accidental cancellation between co-located sources,
    /// the probe injects *absolute* amplitudes — the support is identical to
    /// what Listing 2 finds when no cancellation occurs, and strictly safer
    /// when it does. The paper injects for more timesteps "if the wavefield
    /// is zero at the first timestep"; we do the same, advancing through the
    /// wavelet until every source has fired a non-zero sample.
    pub fn build_probed(domain: &Domain, sources: &SparsePoints, wavelets: &Array2<f32>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        let nt = wavelets.dims()[0];
        assert_eq!(wavelets.dims()[1], sources.len());
        let stencils = trilinear_all(domain, sources);
        let mut probe = Field::zeros(domain.shape(), 0);
        let mut fired = vec![false; sources.len()];
        for t in 0..nt {
            for (s, st) in stencils.iter().enumerate() {
                let amp = wavelets.get(t, s).abs();
                if amp != 0.0 {
                    fired[s] = true;
                    for (c, w) in st.nonzero() {
                        probe.add(c[0], c[1], c[2], w.abs() * amp);
                    }
                }
            }
            if fired.iter().all(|&f| f) {
                break;
            }
        }
        assert!(
            fired.iter().all(|&f| f),
            "a source never fires a non-zero amplitude; its support cannot be probed"
        );
        let affected: Vec<[usize; 3]> = probe
            .nonzero_interior()
            .into_iter()
            .map(|(x, y, z)| [x, y, z])
            .collect();
        Self::assemble(domain, sources, wavelets, affected)
    }

    fn assemble(
        domain: &Domain,
        sources: &SparsePoints,
        wavelets: &Array2<f32>,
        affected: Vec<[usize; 3]>,
    ) -> Self {
        let s = domain.shape();
        let nt = wavelets.dims()[0];
        let mut sm = Array3::zeros(s.nx, s.ny, s.nz);
        let mut sid = Array3::full(s.nx, s.ny, s.nz, -1i32);
        for (id, &[x, y, z]) in affected.iter().enumerate() {
            sm.set(x, y, z, 1u8);
            sid.set(x, y, z, id as i32);
        }
        // Listing 3: decompose the wavelets onto the affected points.
        let npts = affected.len().max(1);
        let mut src_dcmp = Array2::zeros(nt.max(1), npts);
        let stencils = trilinear_all(domain, sources);
        for (sidx, st) in stencils.iter().enumerate() {
            for (c, w) in st.nonzero() {
                let id = sid.get(c[0], c[1], c[2]);
                debug_assert!(id >= 0, "footprint point missing from affected set");
                if id < 0 {
                    continue; // cancellation-probed builds may drop points
                }
                for t in 0..nt {
                    let v = src_dcmp.get(t, id as usize) + w * wavelets.get(t, sidx);
                    src_dcmp.set(t, id as usize, v);
                }
            }
        }
        SourcePrecompute {
            sm,
            sid,
            points: affected,
            src_dcmp,
        }
    }

    /// Number of affected grid points (`npts` of Fig. 5c).
    pub fn npts(&self) -> usize {
        self.points.len()
    }

    /// Number of precomputed timesteps.
    pub fn nt(&self) -> usize {
        self.src_dcmp.dims()[0]
    }

    /// Mask pencil at `(x, y)` (length `nz`, unit stride).
    #[inline]
    pub fn sm_pencil(&self, x: usize, y: usize) -> &[u8] {
        self.sm.pencil(x, y)
    }

    /// ID pencil at `(x, y)`.
    #[inline]
    pub fn sid_pencil(&self, x: usize, y: usize) -> &[i32] {
        self.sid.pencil(x, y)
    }

    /// Decomposed amplitudes for timestep `t` (indexed by id).
    #[inline]
    pub fn dcmp_row(&self, t: usize) -> &[f32] {
        self.src_dcmp.row(t)
    }

    /// Fused injection over a region (the Listing-4 inner loops, reference
    /// form): for every masked point in `region`,
    /// `u[p] += scale(p) · src_dcmp[t][SID[p]]`.
    ///
    /// The optimised propagators inline this per pencil; this method is the
    /// specification they are tested against.
    pub fn apply_to_field(
        &self,
        field: &mut Field,
        t: usize,
        region: &Range3,
        scale: impl Fn(usize, usize, usize) -> f32,
    ) {
        let row = self.dcmp_row(t).to_vec();
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let sm = self.sm.pencil(x, y);
                let sid = self.sid.pencil(x, y);
                for z in region.z0..region.z1 {
                    if sm[z] != 0 {
                        field.add(x, y, z, scale(x, y, z) * row[sid[z] as usize]);
                    }
                }
            }
        }
    }

    /// Approximate extra memory the scheme allocates, in bytes — the
    /// "negligible overhead" the paper's §IV-E corner cases quantify.
    pub fn memory_overhead_bytes(&self) -> usize {
        self.sm.len() * std::mem::size_of::<u8>()
            + self.sid.len() * std::mem::size_of::<i32>()
            + self.src_dcmp.len() * std::mem::size_of::<f32>()
            + self.points.len() * std::mem::size_of::<[usize; 3]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::inject_points;
    use crate::wavelet::{ricker, wavelet_matrix, wavelet_matrix_scaled};
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(13), 10.0)
    }

    #[test]
    fn mask_and_sid_consistent() {
        let d = dom();
        let src = SparsePoints::new(&d, vec![[33.3, 44.4, 55.5], [77.7, 22.2, 11.1]]);
        let w = wavelet_matrix(&ricker(10.0, 0.001, 32), 2);
        let p = SourcePrecompute::build(&d, &src, &w);
        assert_eq!(p.npts(), 16, "two disjoint cells: 8 points each");
        // SM == 1 exactly where SID >= 0, ids dense and ascending in
        // canonical order.
        let mut next = 0i32;
        for (x, y, z) in d.shape().iter() {
            let m = p.sm.get(x, y, z);
            let id = p.sid.get(x, y, z);
            assert_eq!(m == 1, id >= 0);
            if id >= 0 {
                assert_eq!(id, next, "ascending ids in grid order");
                assert_eq!(p.points[id as usize], [x, y, z]);
                next += 1;
            }
        }
        assert_eq!(next as usize, p.npts());
    }

    #[test]
    fn shared_points_get_single_id() {
        let d = dom();
        // Two sources inside the same grid cell share all 8 corners
        // ("quite common to encounter points being affected by more than
        // one source", §II.A-2).
        let src = SparsePoints::new(&d, vec![[34.0, 44.0, 54.0], [36.0, 46.0, 56.0]]);
        let w = wavelet_matrix(&ricker(10.0, 0.001, 8), 2);
        let p = SourcePrecompute::build(&d, &src, &w);
        assert_eq!(p.npts(), 8);
    }

    #[test]
    fn probed_matches_analytic() {
        let d = dom();
        let src = SparsePoints::new(
            &d,
            vec![[33.3, 44.4, 55.5], [77.7, 22.2, 11.1], [35.0, 45.0, 55.0]],
        );
        let w = wavelet_matrix(&ricker(10.0, 0.001, 64), 3);
        let a = SourcePrecompute::build(&d, &src, &w);
        let b = SourcePrecompute::build_probed(&d, &src, &w);
        assert_eq!(a.points, b.points);
        assert_eq!(a.sm, b.sm);
        assert_eq!(a.sid, b.sid);
        for t in 0..a.nt() {
            for id in 0..a.npts() {
                assert_eq!(a.src_dcmp.get(t, id), b.src_dcmp.get(t, id));
            }
        }
    }

    #[test]
    fn decomposed_injection_equals_classic() {
        // The decisive equivalence: injecting src_dcmp at the masked points
        // reproduces classic off-grid injection, per timestep.
        let d = dom();
        let src = SparsePoints::new(
            &d,
            vec![[31.0, 47.0, 53.0], [36.5, 45.5, 52.5], [80.0, 80.0, 80.0]],
        );
        let w = wavelet_matrix_scaled(&ricker(12.0, 0.001, 16), &[1.0, -0.7, 0.3]);
        let p = SourcePrecompute::build(&d, &src, &w);
        let scale = |x: usize, _y: usize, _z: usize| 1.0 + 0.01 * x as f32;
        for t in [0usize, 5, 15] {
            let mut classic = Field::zeros(d.shape(), 1);
            let amps: Vec<f32> = (0..src.len()).map(|s| w.get(t, s)).collect();
            inject_points(&mut classic, &d, &src, &amps, scale);

            let mut fused = Field::zeros(d.shape(), 1);
            let full = d.shape().full_range();
            p.apply_to_field(&mut fused, t, &full, scale);

            let diff = classic.interior_copy().max_abs_diff(&fused.interior_copy());
            assert!(diff < 1e-6, "t={t}: max diff {diff}");
        }
    }

    #[test]
    fn decomposition_is_linear_in_sources() {
        // src_dcmp of the union of two source sets equals the sum of the
        // individual decompositions on the union's points.
        let d = dom();
        let s1 = SparsePoints::new(&d, vec![[31.0, 47.0, 53.0]]);
        let s2 = SparsePoints::new(&d, vec![[80.0, 80.0, 80.5]]);
        let both = SparsePoints::new(&d, vec![[31.0, 47.0, 53.0], [80.0, 80.0, 80.5]]);
        let wl = ricker(10.0, 0.001, 8);
        let p1 = SourcePrecompute::build(&d, &s1, &wavelet_matrix(&wl, 1));
        let p2 = SourcePrecompute::build(&d, &s2, &wavelet_matrix(&wl, 1));
        let pu = SourcePrecompute::build(&d, &both, &wavelet_matrix(&wl, 2));
        assert_eq!(pu.npts(), p1.npts() + p2.npts());
        for t in 0..8 {
            for (id, pt) in pu.points.iter().enumerate() {
                let v = pu.src_dcmp.get(t, id);
                let from1 = p1
                    .points
                    .iter()
                    .position(|q| q == pt)
                    .map(|i| p1.src_dcmp.get(t, i))
                    .unwrap_or(0.0);
                let from2 = p2
                    .points
                    .iter()
                    .position(|q| q == pt)
                    .map(|i| p2.src_dcmp.get(t, i))
                    .unwrap_or(0.0);
                assert!((v - (from1 + from2)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn region_restriction_only_touches_region() {
        let d = dom();
        let src = SparsePoints::new(&d, vec![[33.3, 44.4, 55.5]]);
        let w = wavelet_matrix(&ricker(10.0, 0.001, 4), 1);
        let p = SourcePrecompute::build(&d, &src, &w);
        let mut f = Field::zeros(d.shape(), 0);
        // Region excludes the source cell entirely.
        let region = Range3::new((0, 2), (0, 2), (0, 2));
        p.apply_to_field(&mut f, 0, &region, |_, _, _| 1.0);
        assert_eq!(f.nonzero_interior().len(), 0);
    }

    #[test]
    fn on_grid_source_has_one_point() {
        let d = dom();
        let src = SparsePoints::new(&d, vec![[30.0, 40.0, 50.0]]);
        let w = wavelet_matrix(&ricker(10.0, 0.001, 4), 1);
        let p = SourcePrecompute::build(&d, &src, &w);
        assert_eq!(p.npts(), 1);
        assert_eq!(p.points[0], [3, 4, 5]);
        // Full wavelet lands on that single point with weight 1.
        for t in 0..4 {
            assert!((p.src_dcmp.get(t, 0) - w.get(t, 0)).abs() < 1e-7);
        }
    }

    #[test]
    fn memory_overhead_reported() {
        let d = dom();
        let src = SparsePoints::new(&d, vec![[33.3, 44.4, 55.5]]);
        let w = wavelet_matrix(&ricker(10.0, 0.001, 16), 1);
        let p = SourcePrecompute::build(&d, &src, &w);
        let n = d.shape().len();
        // At least the two mask volumes.
        assert!(p.memory_overhead_bytes() >= n * (1 + 4));
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn rejects_empty_sources() {
        let d = dom();
        let src = SparsePoints::new(&d, vec![]);
        let w = Array2::<f32>::zeros(4, 1);
        let _ = SourcePrecompute::build(&d, &src, &w);
    }
}
