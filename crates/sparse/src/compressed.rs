//! Iteration-space compression for fused sparse operators
//! (paper Listing 5 / Fig. 6).
//!
//! The fused `z2` loop of Listing 4 scans the whole `z` pencil even though
//! `SM`/`SID` are "massively sparse — multiplications by zero are dominant"
//! (§II.A-5). The compression aggregates the non-zero occurrences along `z`:
//! `nnz_mask[x][y]` counts them, and the `Sp_SID` volume is trimmed to the
//! deepest pencil, storing for each `(x, y, k)` the z-index of the k-th
//! affected point (and, as a direct-access convenience, its ID).

use tempest_grid::{Array2, Array3, Shape};

/// Compressed per-pencil index of affected points.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMask {
    /// `nnz_mask[x][y]`: number of affected points in the `(x, y)` pencil.
    pub nnz: Array2<u32>,
    /// `sp_z[x][y][k]`: z-index of the k-th affected point (padding −1).
    pub sp_z: Array3<i32>,
    /// `sp_id[x][y][k]`: unique ID of that point (padding −1). This is the
    /// value `SID[x, y, sp_z[x][y][k]]` — stored directly so the hot loop
    /// does one indirection instead of two.
    pub sp_id: Array3<i32>,
    /// Depth of the trimmed third axis (`max_k` over all pencils, ≥ 1).
    pub depth: usize,
}

impl CompressedMask {
    /// Build from an ID volume (−1 = unaffected), e.g.
    /// [`crate::SourcePrecompute::sid`] or [`crate::ReceiverPrecompute::rid`].
    pub fn build(sid: &Array3<i32>) -> Self {
        let [nx, ny, nz] = sid.dims();
        let mut nnz = Array2::zeros(nx, ny);
        let mut depth = 0usize;
        for x in 0..nx {
            for y in 0..ny {
                let c = sid.pencil(x, y).iter().filter(|&&v| v >= 0).count();
                nnz.set(x, y, c as u32);
                depth = depth.max(c);
            }
        }
        let stored = depth.max(1);
        let mut sp_z = Array3::full(nx, ny, stored, -1i32);
        let mut sp_id = Array3::full(nx, ny, stored, -1i32);
        for x in 0..nx {
            for y in 0..ny {
                let mut k = 0usize;
                for z in 0..nz {
                    let id = sid.get(x, y, z);
                    if id >= 0 {
                        sp_z.set(x, y, k, z as i32);
                        sp_id.set(x, y, k, id);
                        k += 1;
                    }
                }
            }
        }
        CompressedMask {
            nnz,
            sp_z,
            sp_id,
            depth,
        }
    }

    /// Affected `(z, id)` pairs of the `(x, y)` pencil, in ascending z.
    #[inline]
    pub fn entries(&self, x: usize, y: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.nnz.get(x, y) as usize;
        let zs = self.sp_z.pencil(x, y);
        let ids = self.sp_id.pencil(x, y);
        (0..n).map(move |k| (zs[k] as usize, ids[k] as usize))
    }

    /// Number of affected points in the `(x, y)` pencil.
    #[inline]
    pub fn count(&self, x: usize, y: usize) -> usize {
        self.nnz.get(x, y) as usize
    }

    /// Total affected points across all pencils.
    pub fn total(&self) -> usize {
        self.nnz.as_slice().iter().map(|&c| c as usize).sum()
    }

    /// Iteration-space reduction factor versus the uncompressed Listing-4
    /// loop: `(nx·ny·nz) / Σ nnz` — "the opportunity to reduce the iteration
    /// space generally applies to the majority of problems in seismic"
    /// (§II.A-5). Returns `f64::INFINITY` for an empty mask.
    pub fn reduction_factor(&self, shape: Shape) -> f64 {
        let total = self.total();
        if total == 0 {
            f64::INFINITY
        } else {
            shape.len() as f64 / total as f64
        }
    }

    /// Extra memory of the compressed structures, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nnz.len() * 4 + self.sp_z.len() * 4 + self.sp_id.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid_with(points: &[[usize; 3]], shape: Shape) -> Array3<i32> {
        let mut sid = Array3::full(shape.nx, shape.ny, shape.nz, -1i32);
        let mut sorted = points.to_vec();
        sorted.sort_unstable();
        for (id, &[x, y, z]) in sorted.iter().enumerate() {
            sid.set(x, y, z, id as i32);
        }
        sid
    }

    #[test]
    fn counts_and_depth() {
        let s = Shape::cube(8);
        let sid = sid_with(
            &[[1, 1, 0], [1, 1, 3], [1, 1, 7], [4, 5, 2]],
            s,
        );
        let c = CompressedMask::build(&sid);
        assert_eq!(c.count(1, 1), 3);
        assert_eq!(c.count(4, 5), 1);
        assert_eq!(c.count(0, 0), 0);
        assert_eq!(c.depth, 3);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn entries_match_sid_in_order() {
        let s = Shape::cube(8);
        let pts = [[2, 3, 1], [2, 3, 5], [2, 3, 6], [7, 0, 0]];
        let sid = sid_with(&pts, s);
        let c = CompressedMask::build(&sid);
        let e: Vec<_> = c.entries(2, 3).collect();
        assert_eq!(e.len(), 3);
        // ascending z, ids consistent with the SID volume
        assert_eq!(e[0].0, 1);
        assert_eq!(e[1].0, 5);
        assert_eq!(e[2].0, 6);
        for &(z, id) in &e {
            assert_eq!(sid.get(2, 3, z), id as i32);
        }
        assert_eq!(c.entries(0, 0).count(), 0);
    }

    #[test]
    fn trimmed_depth_saves_memory() {
        // One affected point in a 32³ grid: Sp_SID stores depth 1 instead
        // of nz=32 (Fig. 6 "cutting off z-slices where all elements are
        // zero").
        let s = Shape::cube(32);
        let sid = sid_with(&[[10, 11, 12]], s);
        let c = CompressedMask::build(&sid);
        assert_eq!(c.depth, 1);
        assert_eq!(c.sp_z.dims(), [32, 32, 1]);
        assert!(c.memory_bytes() < 32 * 32 * 32 * 4);
    }

    #[test]
    fn reduction_factor_large_for_sparse() {
        let s = Shape::cube(32);
        let sid = sid_with(&[[1, 2, 3], [4, 5, 6]], s);
        let c = CompressedMask::build(&sid);
        let f = c.reduction_factor(s);
        assert!((f - 32.0f64.powi(3) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_is_representable() {
        let s = Shape::cube(4);
        let sid = Array3::full(4, 4, 4, -1i32);
        let c = CompressedMask::build(&sid);
        assert_eq!(c.total(), 0);
        assert_eq!(c.depth, 0);
        assert!(c.reduction_factor(s).is_infinite());
    }

    #[test]
    fn dense_pencil_roundtrip() {
        // Every z of one pencil affected — the Fig. 10 "densely located"
        // extreme where compression stops helping but stays correct.
        let s = Shape::cube(6);
        let pts: Vec<[usize; 3]> = (0..6).map(|z| [3, 3, z]).collect();
        let sid = sid_with(&pts, s);
        let c = CompressedMask::build(&sid);
        assert_eq!(c.count(3, 3), 6);
        assert_eq!(c.depth, 6);
        let e: Vec<_> = c.entries(3, 3).collect();
        assert_eq!(e.iter().map(|&(z, _)| z).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }
}
