//! Sets of sparse off-the-grid points (sources or receivers) and the layout
//! generators used by the paper's experiments.

use tempest_grid::Rng64;
use tempest_grid::Domain;

/// A set of off-the-grid positions in physical coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePoints {
    coords: Vec<[f32; 3]>,
}

impl SparsePoints {
    /// Wrap explicit coordinates; every point must lie inside the domain.
    pub fn new(domain: &Domain, coords: Vec<[f32; 3]>) -> Self {
        for (i, p) in coords.iter().enumerate() {
            assert!(
                domain.contains_point(*p),
                "point {i} at {p:?} lies outside the domain"
            );
        }
        SparsePoints { coords }
    }

    /// A single point at the domain centre, offset off-grid by `frac` of a
    /// grid cell along every axis (the paper's single-shot configuration:
    /// "one time-dependent, spatially localized seismic source", §IV.B).
    pub fn single_center(domain: &Domain, frac: f32) -> Self {
        assert!((0.0..1.0).contains(&frac));
        let mut c = domain.center();
        let h = domain.spacing();
        for a in 0..3 {
            c[a] += frac * h[a];
        }
        // Clamp into the domain for tiny grids.
        let e = domain.extent();
        let o = domain.origin();
        for a in 0..3 {
            c[a] = c[a].min(o[a] + e[a]).max(o[a]);
        }
        SparsePoints { coords: vec![c] }
    }

    /// `n` points laid out on a √n × √n grid inside one x-y plane slice at
    /// depth fraction `z_frac`, each jittered off-grid by `frac` of a cell —
    /// the "increasing number of sources located at an x-y plane slice"
    /// layout of Fig. 10 (sparse case).
    pub fn plane_layout(domain: &Domain, n: usize, z_frac: f32, frac: f32) -> Self {
        assert!(n > 0);
        let side = (n as f64).sqrt().ceil() as usize;
        let e = domain.extent();
        let o = domain.origin();
        let h = domain.spacing();
        let z = (o[2] + z_frac * e[2]).min(o[2] + e[2]);
        let mut coords = Vec::with_capacity(n);
        'outer: for i in 0..side {
            for j in 0..side {
                if coords.len() == n {
                    break 'outer;
                }
                // Spread over the middle 80% of the plane, keep off-grid.
                let px = o[0] + e[0] * (0.1 + 0.8 * (i as f32 + 0.5) / side as f32) + frac * h[0];
                let py = o[1] + e[1] * (0.1 + 0.8 * (j as f32 + 0.5) / side as f32) + frac * h[1];
                coords.push([
                    px.min(o[0] + e[0]),
                    py.min(o[1] + e[1]),
                    z,
                ]);
            }
        }
        SparsePoints { coords }
    }

    /// `n` points distributed densely and uniformly over the whole 3-D
    /// volume on a ∛n-per-axis lattice, jittered off-grid — the dense
    /// layout of Fig. 10.
    pub fn dense_layout(domain: &Domain, n: usize, frac: f32) -> Self {
        assert!(n > 0);
        let side = (n as f64).cbrt().ceil() as usize;
        let e = domain.extent();
        let o = domain.origin();
        let h = domain.spacing();
        let mut coords = Vec::with_capacity(n);
        'outer: for i in 0..side {
            for j in 0..side {
                for k in 0..side {
                    if coords.len() == n {
                        break 'outer;
                    }
                    let p = [
                        (o[0] + e[0] * (0.05 + 0.9 * (i as f32 + 0.5) / side as f32) + frac * h[0])
                            .min(o[0] + e[0]),
                        (o[1] + e[1] * (0.05 + 0.9 * (j as f32 + 0.5) / side as f32) + frac * h[1])
                            .min(o[1] + e[1]),
                        (o[2] + e[2] * (0.05 + 0.9 * (k as f32 + 0.5) / side as f32) + frac * h[2])
                            .min(o[2] + e[2]),
                    ];
                    coords.push(p);
                }
            }
        }
        SparsePoints { coords }
    }

    /// `n` uniformly random points within the inner 90% of the domain.
    pub fn random(domain: &Domain, n: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut rng = Rng64::new(seed);
        let e = domain.extent();
        let o = domain.origin();
        let coords = (0..n)
            .map(|_| {
                [
                    o[0] + e[0] * rng.range_f32(0.05, 0.95),
                    o[1] + e[1] * rng.range_f32(0.05, 0.95),
                    o[2] + e[2] * rng.range_f32(0.05, 0.95),
                ]
            })
            .collect();
        SparsePoints { coords }
    }

    /// A horizontal line of receivers at depth fraction `z_frac` spanning x,
    /// centred in y — a standard seismic acquisition geometry.
    pub fn receiver_line(domain: &Domain, n: usize, z_frac: f32) -> Self {
        assert!(n > 0);
        let e = domain.extent();
        let o = domain.origin();
        let y = o[1] + 0.5 * e[1];
        let z = o[2] + z_frac * e[2];
        let coords = (0..n)
            .map(|i| {
                let fx = if n == 1 {
                    0.5
                } else {
                    0.05 + 0.9 * i as f32 / (n - 1) as f32
                };
                [o[0] + fx * e[0], y, z]
            })
            .collect();
        SparsePoints { coords }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the set has no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinates.
    pub fn coords(&self) -> &[[f32; 3]] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(21), 10.0)
    }

    #[test]
    fn single_center_is_off_grid() {
        let d = dom();
        let p = SparsePoints::single_center(&d, 0.37);
        assert_eq!(p.len(), 1);
        let f = d.frac_index(p.coords()[0]);
        for a in 0..3 {
            assert!((f[a].fract() - 0.37).abs() < 1e-4, "axis {a}: {f:?}");
        }
    }

    #[test]
    fn plane_layout_counts_and_plane() {
        let d = dom();
        for n in [1, 4, 10, 50] {
            let p = SparsePoints::plane_layout(&d, n, 0.25, 0.5);
            assert_eq!(p.len(), n);
            let z0 = p.coords()[0][2];
            assert!(p.coords().iter().all(|c| c[2] == z0), "coplanar");
            for c in p.coords() {
                assert!(d.contains_point(*c));
            }
        }
    }

    #[test]
    fn dense_layout_spans_volume() {
        let d = dom();
        let p = SparsePoints::dense_layout(&d, 27, 0.5);
        assert_eq!(p.len(), 27);
        let zs: Vec<f32> = p.coords().iter().map(|c| c[2]).collect();
        let (zmin, zmax) = zs
            .iter()
            .fold((f32::MAX, f32::MIN), |(a, b), &z| (a.min(z), b.max(z)));
        assert!(zmax - zmin > 0.5 * d.extent()[2], "spread across depth");
    }

    #[test]
    fn random_is_deterministic_and_inside() {
        let d = dom();
        let a = SparsePoints::random(&d, 20, 9);
        let b = SparsePoints::random(&d, 20, 9);
        assert_eq!(a, b);
        for c in a.coords() {
            assert!(d.contains_point(*c));
        }
    }

    #[test]
    fn receiver_line_spans_x() {
        let d = dom();
        let r = SparsePoints::receiver_line(&d, 11, 0.1);
        assert_eq!(r.len(), 11);
        assert!(r.coords()[10][0] > r.coords()[0][0]);
        let y0 = r.coords()[0][1];
        assert!(r.coords().iter().all(|c| c[1] == y0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn new_rejects_outside_points() {
        let d = dom();
        let _ = SparsePoints::new(&d, vec![[1e6, 0.0, 0.0]]);
    }
}
