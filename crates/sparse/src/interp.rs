//! Trilinear interpolation between off-the-grid points and grid points.
//!
//! An off-grid point sits inside one grid cell; its interaction with the
//! grid involves the cell's 8 corners with trilinear weights (the 3-D
//! analogue of the paper's Fig. 3 bilinear example: "4 points are affected
//! in 2D space"). The same weights serve both directions:
//!
//! * **injection** (scatter): `u[corner] += w(corner) · amplitude`,
//! * **interpolation** (gather): `d = Σ w(corner) · u[corner]`.

use crate::points::SparsePoints;
use tempest_grid::Domain;

/// The interpolation footprint of one off-grid point: up to 8 grid cells
/// with weights forming a partition of unity.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpStencil {
    /// `(grid index, weight)` pairs; weights sum to 1.
    pub cells: Vec<([usize; 3], f32)>,
}

impl InterpStencil {
    /// Only the entries with non-zero weight (a point exactly on a grid
    /// plane has degenerate corners that receive weight 0 — they are *not*
    /// "affected points" in the sense of the paper's probe step).
    pub fn nonzero(&self) -> impl Iterator<Item = ([usize; 3], f32)> + '_ {
        self.cells.iter().copied().filter(|&(_, w)| w != 0.0)
    }
}

/// Trilinear weights of an off-grid physical point.
///
/// # Panics
/// If the point lies outside the domain.
pub fn trilinear(domain: &Domain, p: [f32; 3]) -> InterpStencil {
    assert!(
        domain.contains_point(p),
        "point {p:?} lies outside the domain"
    );
    let f = domain.frac_index(p);
    let s = domain.shape();
    let dims = [s.nx, s.ny, s.nz];
    // Lower cell corner, clamped so that corner+1 stays in-bounds even for
    // points exactly on the upper domain face.
    let mut i0 = [0usize; 3];
    let mut a = [0f32; 3]; // fractional offsets in [0, 1]
    for d in 0..3 {
        let fi = f[d].max(0.0);
        let mut c = fi.floor() as usize;
        if c >= dims[d] - 1 {
            c = dims[d] - 2;
        }
        i0[d] = c;
        a[d] = fi - c as f32;
    }
    let mut cells = Vec::with_capacity(8);
    for dx in 0..2usize {
        for dy in 0..2usize {
            for dz in 0..2usize {
                let wx = if dx == 0 { 1.0 - a[0] } else { a[0] };
                let wy = if dy == 0 { 1.0 - a[1] } else { a[1] };
                let wz = if dz == 0 { 1.0 - a[2] } else { a[2] };
                cells.push(([i0[0] + dx, i0[1] + dy, i0[2] + dz], wx * wy * wz));
            }
        }
    }
    InterpStencil { cells }
}

/// Trilinear stencils for every point in a set.
pub fn trilinear_all(domain: &Domain, points: &SparsePoints) -> Vec<InterpStencil> {
    points.coords().iter().map(|&p| trilinear(domain, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(11), 10.0)
    }

    #[test]
    fn weights_partition_unity() {
        let d = dom();
        for p in [
            [0.0, 0.0, 0.0],
            [55.0, 42.0, 13.37],
            [100.0, 100.0, 100.0],
            [99.99, 0.01, 50.0],
        ] {
            let s = trilinear(&d, p);
            let sum: f32 = s.cells.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-5, "{p:?}: sum {sum}");
            assert!(s.cells.iter().all(|&(_, w)| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn on_grid_point_is_kronecker() {
        let d = dom();
        let s = trilinear(&d, [30.0, 40.0, 50.0]);
        let nz: Vec<_> = s.nonzero().collect();
        assert_eq!(nz.len(), 1);
        assert_eq!(nz[0], ([3, 4, 5], 1.0));
    }

    #[test]
    fn cell_center_has_equal_eighths() {
        let d = dom();
        let s = trilinear(&d, [35.0, 45.0, 55.0]);
        assert_eq!(s.cells.len(), 8);
        for (_, w) in &s.cells {
            assert!((w - 0.125).abs() < 1e-6);
        }
    }

    #[test]
    fn upper_face_clamps_into_bounds() {
        let d = dom();
        let s = trilinear(&d, [100.0, 100.0, 100.0]);
        let shape = d.shape();
        for (c, _) in &s.cells {
            assert!(shape.contains(c[0], c[1], c[2]), "corner {c:?}");
        }
        // All weight concentrates on the last grid point.
        let nz: Vec<_> = s.nonzero().collect();
        assert_eq!(nz.len(), 1);
        assert_eq!(nz[0].0, [10, 10, 10]);
    }

    #[test]
    fn linear_function_reproduced_exactly() {
        // Interpolating u(x,y,z) = 2x + 3y - z + 5 at an off-grid point must
        // be exact (trilinear reproduces trilinear polynomials).
        let d = dom();
        let p = [17.3, 82.1, 44.9];
        let s = trilinear(&d, p);
        let val: f32 = s
            .cells
            .iter()
            .map(|&(c, w)| {
                let xyz = d.coord_of(c[0], c[1], c[2]);
                w * (2.0 * xyz[0] + 3.0 * xyz[1] - xyz[2] + 5.0)
            })
            .sum();
        let expect = 2.0 * p[0] + 3.0 * p[1] - p[2] + 5.0;
        assert!((val - expect).abs() < 1e-2, "{val} vs {expect}");
    }

    #[test]
    fn weights_move_with_the_point() {
        let d = dom();
        let near_lo = trilinear(&d, [30.1, 40.0, 50.0]);
        // Corner (3,4,5) dominates when the point is near it.
        let w_lo = near_lo
            .cells
            .iter()
            .find(|(c, _)| *c == [3, 4, 5])
            .unwrap()
            .1;
        assert!(w_lo > 0.98);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_outside_point() {
        let _ = trilinear(&dom(), [-1.0, 0.0, 0.0]);
    }

    #[test]
    fn trilinear_all_matches_individual() {
        let d = dom();
        let pts = SparsePoints::new(&d, vec![[5.0, 5.0, 5.0], [72.5, 13.0, 99.0]]);
        let all = trilinear_all(&d, &pts);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], trilinear(&d, [5.0, 5.0, 5.0]));
        assert_eq!(all[1], trilinear(&d, [72.5, 13.0, 99.0]));
    }
}
