//! Moving off-the-grid sources (paper §II.A: "We assume that the sources'
//! coordinates are constant across our models' time-domain though this may
//! not always be the case. However, Devito's API can support the moving
//! sources' case, and our algorithm is independent of it.").
//!
//! A moving source's trajectory is piecewise constant over *epochs* of
//! timesteps (marine seismic: the airgun moves between shots; within a shot
//! record it is static). Each epoch gets its own precomputed grid-aligned
//! structures; temporal blocking then requires time tiles not to straddle an
//! epoch boundary — [`MovingSourcePrecompute::max_tile_t`] exposes the
//! constraint, and per-epoch structures are selected by timestep in O(log E).

use crate::points::SparsePoints;
use crate::precompute::SourcePrecompute;
use tempest_grid::{Array2, Domain};

/// One constant-position span of the trajectory.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// First timestep of the epoch (inclusive).
    pub t_start: usize,
    /// One past the last timestep (exclusive).
    pub t_end: usize,
    /// Precomputed structures valid for `t ∈ [t_start, t_end)`.
    pub pre: SourcePrecompute,
}

/// Precomputed injection data for sources that move between epochs.
#[derive(Debug, Clone)]
pub struct MovingSourcePrecompute {
    epochs: Vec<Epoch>,
    nt: usize,
}

impl MovingSourcePrecompute {
    /// Build from a piecewise-constant trajectory: `legs[i]` gives the
    /// source positions used from timestep `breaks[i]` to `breaks[i+1]`
    /// (with an implicit final break at `nt`). `wavelets` is the global
    /// `nt × ns` wavelet matrix.
    ///
    /// # Panics
    /// If `breaks` is empty, does not start at 0, is not strictly
    /// increasing, or `legs.len() != breaks.len()`.
    pub fn build(
        domain: &Domain,
        legs: &[SparsePoints],
        breaks: &[usize],
        wavelets: &Array2<f32>,
    ) -> Self {
        assert!(!legs.is_empty(), "need at least one trajectory leg");
        assert_eq!(legs.len(), breaks.len(), "one break per leg");
        assert_eq!(breaks[0], 0, "trajectory must start at timestep 0");
        let nt = wavelets.dims()[0];
        let mut epochs = Vec::with_capacity(legs.len());
        for (i, leg) in legs.iter().enumerate() {
            let t_start = breaks[i];
            let t_end = if i + 1 < breaks.len() {
                breaks[i + 1]
            } else {
                nt
            };
            assert!(t_start < t_end, "epoch {i} is empty or inverted");
            assert!(t_end <= nt, "epoch {i} extends past nt");
            // Each epoch's decomposition uses the full wavelet matrix; only
            // the rows within the epoch are ever read.
            let pre = SourcePrecompute::build(domain, leg, wavelets);
            epochs.push(Epoch {
                t_start,
                t_end,
                pre,
            });
        }
        MovingSourcePrecompute { epochs, nt }
    }

    /// Number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total timesteps covered.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// The epoch active at timestep `t`.
    pub fn epoch_at(&self, t: usize) -> &Epoch {
        assert!(t < self.nt, "timestep {t} out of range");
        let idx = match self
            .epochs
            .binary_search_by(|e| e.t_start.cmp(&t))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        &self.epochs[idx]
    }

    /// Precomputed structures for timestep `t`.
    pub fn pre_at(&self, t: usize) -> &SourcePrecompute {
        &self.epoch_at(t).pre
    }

    /// Largest legal temporal tile height whose tiles never straddle an
    /// epoch boundary when time tiles start at multiples of the returned
    /// value (the gcd of all epoch lengths and start offsets).
    pub fn max_tile_t(&self) -> usize {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut g = 0usize;
        for e in &self.epochs {
            g = gcd(g, e.t_start);
            g = gcd(g, e.t_end);
        }
        g.max(1)
    }

    /// All distinct affected points across the trajectory (diagnostics).
    pub fn total_affected_points(&self) -> usize {
        let mut pts: Vec<[usize; 3]> = self
            .epochs
            .iter()
            .flat_map(|e| e.pre.points.iter().copied())
            .collect();
        pts.sort_unstable();
        pts.dedup();
        pts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::inject_points;
    use crate::wavelet::{ricker, wavelet_matrix};
    use tempest_grid::{Field, Shape};

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(16), 10.0)
    }

    fn legs(d: &Domain) -> (Vec<SparsePoints>, Vec<usize>) {
        let l1 = SparsePoints::new(d, vec![[33.0, 44.0, 55.0]]);
        let l2 = SparsePoints::new(d, vec![[73.0, 44.0, 55.0]]);
        let l3 = SparsePoints::new(d, vec![[113.0, 44.0, 55.0]]);
        (vec![l1, l2, l3], vec![0, 4, 8])
    }

    #[test]
    fn epoch_selection() {
        let d = dom();
        let (l, b) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let m = MovingSourcePrecompute::build(&d, &l, &b, &w);
        assert_eq!(m.num_epochs(), 3);
        assert_eq!(m.epoch_at(0).t_start, 0);
        assert_eq!(m.epoch_at(3).t_start, 0);
        assert_eq!(m.epoch_at(4).t_start, 4);
        assert_eq!(m.epoch_at(7).t_start, 4);
        assert_eq!(m.epoch_at(8).t_start, 8);
        assert_eq!(m.epoch_at(11).t_end, 12);
    }

    #[test]
    fn per_epoch_injection_matches_classic_moving_source() {
        let d = dom();
        let (l, b) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let m = MovingSourcePrecompute::build(&d, &l, &b, &w);
        for t in [0usize, 3, 4, 9, 11] {
            // Which leg is the source on at step t?
            let leg = if t < 4 { 0 } else if t < 8 { 1 } else { 2 };
            let mut classic = Field::zeros(d.shape(), 1);
            inject_points(&mut classic, &d, &l[leg], &[w.get(t, 0)], |_, _, _| 1.0);
            let mut fused = Field::zeros(d.shape(), 1);
            m.pre_at(t)
                .apply_to_field(&mut fused, t, &d.shape().full_range(), |_, _, _| 1.0);
            let diff = classic
                .interior_copy()
                .max_abs_diff(&fused.interior_copy());
            assert!(diff < 1e-6, "t={t}: {diff}");
        }
    }

    #[test]
    fn tile_constraint_is_gcd_of_breaks() {
        let d = dom();
        let (l, b) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let m = MovingSourcePrecompute::build(&d, &l, &b, &w);
        // breaks 0,4,8, nt 12 → gcd 4: tiles of height ≤4 aligned at
        // multiples of 4 never straddle an epoch change.
        assert_eq!(m.max_tile_t(), 4);
    }

    #[test]
    fn affected_points_unioned() {
        let d = dom();
        let (l, b) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let m = MovingSourcePrecompute::build(&d, &l, &b, &w);
        // Three disjoint off-grid positions → 3 × 8 corners.
        assert_eq!(m.total_affected_points(), 24);
    }

    #[test]
    #[should_panic(expected = "start at timestep 0")]
    fn rejects_late_start() {
        let d = dom();
        let (l, _) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let _ = MovingSourcePrecompute::build(&d, &l, &[1, 4, 8], &w);
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn rejects_empty_epoch() {
        let d = dom();
        let (l, _) = legs(&d);
        let w = wavelet_matrix(&ricker(20.0, 0.002, 12), 1);
        let _ = MovingSourcePrecompute::build(&d, &l, &[0, 4, 4], &w);
    }
}
