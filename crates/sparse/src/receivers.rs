//! Receiver interpolation under temporal blocking.
//!
//! Receivers are the dual of sources (paper Fig. 3b): instead of scattering
//! a wavelet *into* the grid, they gather `d[t][r] = Σ_p w(p→r) · u[t][p]`
//! from the up-to-8 grid points surrounding each off-grid receiver. Under a
//! blocked schedule the measurement must be taken when the block containing
//! `p` reaches time `t` — so, exactly like sources, the gather is aligned to
//! the grid and fused into the loop nest:
//!
//! * a receiver mask `RM` / ID volume `RID` marks affected grid points;
//! * each affected point carries its list of `(receiver, weight)`
//!   contributions (CSR layout, since one point can serve several
//!   receivers);
//! * the compressed per-pencil index ([`crate::CompressedMask`]) skips
//!   unaffected z's.

use crate::compressed::CompressedMask;
use crate::interp::trilinear_all;
use crate::points::SparsePoints;
use tempest_grid::{Array3, Domain, Field, Range3};

/// Grid-aligned, precomputed receiver interpolation data.
#[derive(Debug, Clone)]
pub struct ReceiverPrecompute {
    /// Binary receiver mask (1 where some receiver reads the point).
    pub rm: Array3<u8>,
    /// Unique-ID volume (−1 where unaffected), ascending in grid order.
    pub rid: Array3<i32>,
    /// Affected grid points in id order.
    pub points: Vec<[usize; 3]>,
    /// CSR offsets: contributions of point `id` live in
    /// `entries[offsets[id] .. offsets[id + 1]]`.
    pub offsets: Vec<u32>,
    /// `(receiver index, weight)` contribution pairs.
    pub entries: Vec<(u32, f32)>,
    /// Number of receivers.
    pub num_receivers: usize,
}

impl ReceiverPrecompute {
    /// Build the grid-aligned gather structures for a receiver set.
    pub fn build(domain: &Domain, receivers: &SparsePoints) -> Self {
        assert!(!receivers.is_empty(), "need at least one receiver");
        let stencils = trilinear_all(domain, receivers);
        let mut affected: Vec<[usize; 3]> = stencils
            .iter()
            .flat_map(|s| s.nonzero().map(|(c, _)| c))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let s = domain.shape();
        let mut rm = Array3::zeros(s.nx, s.ny, s.nz);
        let mut rid = Array3::full(s.nx, s.ny, s.nz, -1i32);
        for (id, &[x, y, z]) in affected.iter().enumerate() {
            rm.set(x, y, z, 1u8);
            rid.set(x, y, z, id as i32);
        }
        // Group (receiver, weight) pairs by affected point.
        let mut per_point: Vec<Vec<(u32, f32)>> = vec![Vec::new(); affected.len()];
        for (r, st) in stencils.iter().enumerate() {
            for (c, w) in st.nonzero() {
                let id = rid.get(c[0], c[1], c[2]) as usize;
                per_point[id].push((r as u32, w));
            }
        }
        let mut offsets = Vec::with_capacity(affected.len() + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        for list in &per_point {
            entries.extend_from_slice(list);
            offsets.push(entries.len() as u32);
        }
        ReceiverPrecompute {
            rm,
            rid,
            points: affected,
            offsets,
            entries,
            num_receivers: receivers.len(),
        }
    }

    /// Number of affected grid points.
    pub fn npts(&self) -> usize {
        self.points.len()
    }

    /// Contributions `(receiver, weight)` of affected point `id`.
    #[inline]
    pub fn contributions(&self, id: usize) -> &[(u32, f32)] {
        &self.entries[self.offsets[id] as usize..self.offsets[id + 1] as usize]
    }

    /// Mask pencil at `(x, y)`.
    #[inline]
    pub fn rm_pencil(&self, x: usize, y: usize) -> &[u8] {
        self.rm.pencil(x, y)
    }

    /// ID pencil at `(x, y)`.
    #[inline]
    pub fn rid_pencil(&self, x: usize, y: usize) -> &[i32] {
        self.rid.pencil(x, y)
    }

    /// Build the compressed per-pencil index for the fused gather loop.
    pub fn compressed(&self) -> CompressedMask {
        CompressedMask::build(&self.rid)
    }

    /// Reference fused gather over a region: accumulate the contributions of
    /// every masked point of `field` into `trace_row` (the `d[t][·]` row).
    ///
    /// The optimised kernels inline this; it is their test oracle. Note this
    /// *accumulates*: a full-grid sweep split into disjoint regions yields
    /// the same trace row as one whole-grid call.
    pub fn gather_region(&self, field: &Field, region: &Range3, trace_row: &mut [f32]) {
        assert_eq!(trace_row.len(), self.num_receivers);
        for x in region.x0..region.x1 {
            for y in region.y0..region.y1 {
                let rm = self.rm.pencil(x, y);
                let rid = self.rid.pencil(x, y);
                for z in region.z0..region.z1 {
                    if rm[z] != 0 {
                        let v = field.get(x, y, z);
                        for &(r, w) in self.contributions(rid[z] as usize) {
                            trace_row[r as usize] += w * v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::interpolate_points;
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(13), 10.0)
    }

    fn wavy_field(d: &Domain) -> Field {
        let mut f = Field::zeros(d.shape(), 1);
        for (x, y, z) in d.shape().iter() {
            f.set(
                x,
                y,
                z,
                ((x * 7 + y * 3 + z * 5) % 23) as f32 * 0.1 - 1.0,
            );
        }
        f
    }

    #[test]
    fn fused_gather_equals_classic_interpolation() {
        let d = dom();
        let f = wavy_field(&d);
        let recs = SparsePoints::new(
            &d,
            vec![[12.3, 45.6, 78.9], [55.5, 55.5, 55.5], [120.0, 10.0, 20.0]],
        );
        let mut classic = vec![0.0f32; 3];
        interpolate_points(&f, &d, &recs, &mut classic);

        let p = ReceiverPrecompute::build(&d, &recs);
        let mut fused = vec![0.0f32; 3];
        p.gather_region(&f, &d.shape().full_range(), &mut fused);
        for r in 0..3 {
            assert!(
                (classic[r] - fused[r]).abs() < 1e-5,
                "rec {r}: {} vs {}",
                classic[r],
                fused[r]
            );
        }
    }

    #[test]
    fn gather_splits_across_regions() {
        let d = dom();
        let f = wavy_field(&d);
        let recs = SparsePoints::new(&d, vec![[59.5, 59.5, 59.5]]);
        let p = ReceiverPrecompute::build(&d, &recs);
        let mut whole = vec![0.0f32; 1];
        p.gather_region(&f, &d.shape().full_range(), &mut whole);
        // Split the grid into left/right x halves — the receiver footprint
        // straddles nothing here, but the general accumulation must agree.
        let mut split = vec![0.0f32; 1];
        let s = d.shape();
        p.gather_region(&f, &Range3::new((0, 6), (0, s.ny), (0, s.nz)), &mut split);
        p.gather_region(&f, &Range3::new((6, s.nx), (0, s.ny), (0, s.nz)), &mut split);
        assert!((whole[0] - split[0]).abs() < 1e-6);
    }

    #[test]
    fn shared_point_serves_multiple_receivers() {
        let d = dom();
        // Two receivers in the same cell: every affected point contributes
        // to both.
        let recs = SparsePoints::new(&d, vec![[34.0, 44.0, 54.0], [36.0, 46.0, 56.0]]);
        let p = ReceiverPrecompute::build(&d, &recs);
        assert_eq!(p.npts(), 8);
        for id in 0..p.npts() {
            assert_eq!(p.contributions(id).len(), 2);
        }
    }

    #[test]
    fn rid_consistent_with_mask() {
        let d = dom();
        let recs = SparsePoints::new(&d, vec![[12.3, 45.6, 78.9]]);
        let p = ReceiverPrecompute::build(&d, &recs);
        for (x, y, z) in d.shape().iter() {
            assert_eq!(p.rm.get(x, y, z) == 1, p.rid.get(x, y, z) >= 0);
        }
        // CSR covers every entry exactly once; weights per receiver sum to 1.
        let mut wsum = [0.0f32; 1];
        for id in 0..p.npts() {
            for &(r, w) in p.contributions(id) {
                wsum[r as usize] += w;
            }
        }
        assert!((wsum[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn compressed_index_agrees() {
        let d = dom();
        let recs = SparsePoints::new(&d, vec![[12.3, 45.6, 78.9], [90.0, 90.0, 15.0]]);
        let p = ReceiverPrecompute::build(&d, &recs);
        let c = p.compressed();
        assert_eq!(c.total(), p.npts());
        for (id, &[x, y, z]) in p.points.iter().enumerate() {
            assert!(c.entries(x, y).any(|(zz, ii)| zz == z && ii == id));
        }
    }

    #[test]
    fn on_grid_receiver_reads_exactly() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        f.set(5, 5, 5, 42.0);
        let recs = SparsePoints::new(&d, vec![[50.0, 50.0, 50.0]]);
        let p = ReceiverPrecompute::build(&d, &recs);
        let mut out = vec![0.0f32; 1];
        p.gather_region(&f, &d.shape().full_range(), &mut out);
        assert_eq!(out[0], 42.0);
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn rejects_empty_receivers() {
        let d = dom();
        let recs = SparsePoints::new(&d, vec![]);
        let _ = ReceiverPrecompute::build(&d, &recs);
    }
}
