//! # tempest-sparse
//!
//! Off-the-grid sparse operators and the paper's precomputation scheme.
//!
//! Seismic modelling injects a source wavelet at positions that are *not*
//! grid points and measures the wavefield at off-grid receiver positions
//! (paper Fig. 3). Classically these run as separate non-affine loops after
//! each dense timestep (Listing 1) — which is exactly what blocks temporal
//! blocking (Fig. 4b). This crate implements both the classic path and the
//! paper's §II.A scheme that makes temporal blocking legal:
//!
//! 1. **probe** the affected grid points by injecting into an empty grid
//!    (Listing 2) — [`precompute::SourcePrecompute::build_probed`], with an
//!    analytic fast path [`precompute::SourcePrecompute::build`];
//! 2. build the binary **source mask** `SM` and unique-ID volume `SID`
//!    (Fig. 5b/5c);
//! 3. **decompose** the off-grid wavelets into per-affected-point, grid-
//!    aligned wavelets `src_dcmp[t][id]` (Listing 3, Fig. 5d);
//! 4. **fuse** injection into the stencil loop nest (Listing 4) — the fused
//!    per-pencil apply lives here, called from the schedules in
//!    `tempest-tiling` / `tempest-core`;
//! 5. **compress** the iteration space with `nnz_mask` / `Sp_SID`
//!    (Listing 5, Fig. 6) — [`compressed::CompressedMask`].
//!
//! Receiver interpolation gets the mirror treatment ([`receivers`]): affected
//! points are masked and ID'd, and the gather is fused into the blocked loop
//! so measurements are taken at exactly the right space-time coordinates.

pub mod classic;
pub mod compressed;
pub mod interp;
pub mod moving;
pub mod points;
pub mod precompute;
pub mod receivers;
pub mod wavelet;

pub use classic::{inject, interpolate};
pub use compressed::CompressedMask;
pub use interp::{trilinear, InterpStencil};
pub use points::SparsePoints;
pub use precompute::SourcePrecompute;
pub use receivers::ReceiverPrecompute;
pub use wavelet::ricker;
