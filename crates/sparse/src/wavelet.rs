//! Source time signatures.
//!
//! Seismic sources are modelled as a point scatterer carrying a band-limited
//! wavelet; the industry standard (and Devito's default) is the Ricker
//! wavelet — the negative normalised second derivative of a Gaussian.

use tempest_grid::Array2;

/// Ricker wavelet sampled at `nt` steps of `dt` seconds with peak frequency
/// `f0` (Hz). The wavelet is delayed by `t0 = 1/f0` so it starts near zero
/// amplitude but is *non-zero from the first timestep* (the paper's probe
/// step assumes "wavefields with non-zero values at the first timesteps",
/// §II.A-1; the Gaussian tail guarantees mathematically non-zero support).
pub fn ricker(f0: f32, dt: f32, nt: usize) -> Vec<f32> {
    assert!(f0 > 0.0 && dt > 0.0 && nt > 0);
    let t0 = 1.0 / f0;
    (0..nt)
        .map(|i| {
            let t = i as f32 * dt - t0;
            let a = (std::f32::consts::PI * f0 * t).powi(2);
            (1.0 - 2.0 * a) * (-a).exp()
        })
        .collect()
}

/// Wavelet matrix `src[t][s]` for `ns` sources all firing the same wavelet
/// (the paper's corner-case experiments scale the *number* of sources, not
/// their signatures).
pub fn wavelet_matrix(wavelet: &[f32], ns: usize) -> Array2<f32> {
    assert!(!wavelet.is_empty() && ns > 0);
    let mut m = Array2::zeros(wavelet.len(), ns);
    for (t, &w) in wavelet.iter().enumerate() {
        m.row_mut(t).fill(w);
    }
    m
}

/// Wavelet matrix with a per-source amplitude scale (distinguishes sources
/// in correctness tests).
pub fn wavelet_matrix_scaled(wavelet: &[f32], scales: &[f32]) -> Array2<f32> {
    assert!(!wavelet.is_empty() && !scales.is_empty());
    let mut m = Array2::zeros(wavelet.len(), scales.len());
    for (t, &w) in wavelet.iter().enumerate() {
        for (s, &a) in scales.iter().enumerate() {
            m.set(t, s, w * a);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_peak_is_one_at_t0() {
        let f0 = 10.0;
        let dt = 0.001;
        let w = ricker(f0, dt, 400);
        // Peak at t = t0 = 0.1 s = sample 100.
        let (imax, &vmax) = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(imax, 100);
        assert!((vmax - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ricker_zero_mean_like() {
        // The Ricker wavelet integrates to zero over its support.
        let w = ricker(10.0, 0.001, 1000);
        let sum: f32 = w.iter().sum();
        assert!(sum.abs() < 1e-2, "sum {sum}");
    }

    #[test]
    fn ricker_symmetric_about_peak() {
        let w = ricker(8.0, 0.002, 200);
        // t0/dt = 62.5, so samples 62/63 (and 60/65) are mirror images
        // about the peak at t0.
        assert!((w[62] - w[63]).abs() < 1e-6);
        assert!((w[60] - w[65]).abs() < 1e-6);
    }

    #[test]
    fn ricker_first_sample_nonzero() {
        // §II.A-1: the probe assumes a non-zero wavefield at the first
        // timestep.
        let w = ricker(10.0, 0.001, 10);
        assert!(w[0] != 0.0);
    }

    #[test]
    fn wavelet_matrix_broadcasts() {
        let w = [0.5, -1.0, 0.25];
        let m = wavelet_matrix(&w, 3);
        assert_eq!(m.dims(), [3, 3]);
        for (t, &wt) in w.iter().enumerate() {
            for s in 0..3 {
                assert_eq!(m.get(t, s), wt);
            }
        }
    }

    #[test]
    fn scaled_matrix_applies_amplitudes() {
        let w = vec![1.0, 2.0];
        let m = wavelet_matrix_scaled(&w, &[1.0, -0.5]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), -0.5);
        assert_eq!(m.get(1, 1), -1.0);
    }
}
