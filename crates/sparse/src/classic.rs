//! Classic per-timestep sparse operators (the paper's Listing 1).
//!
//! This is the reference path: after each dense stencil sweep, iterate the
//! off-grid source set and scatter the wavelet into the surrounding grid
//! points, then gather receiver measurements. These loops are *non-affine*
//! (indirect through coordinate arrays) — the property that defeats
//! polyhedral time-tiling tools (§I.A) and motivates the precomputation
//! scheme in [`crate::precompute`].

use crate::interp::{trilinear_all, InterpStencil};
use crate::points::SparsePoints;
use tempest_grid::{Domain, Field};

/// Scatter one timestep of source amplitudes into the field.
///
/// `u[p] += w(p) · amp[s] · scale(p)` for each of the up-to-8 grid points
/// `p` surrounding each source `s`. The `scale` closure carries the
/// equation-dependent injection factor (e.g. `dt²/m` for the acoustic wave
/// equation — Devito's `src.inject(expr=src*dt**2/m)`).
pub fn inject(
    field: &mut Field,
    stencils: &[InterpStencil],
    amps: &[f32],
    scale: impl Fn(usize, usize, usize) -> f32,
) {
    assert_eq!(stencils.len(), amps.len(), "one amplitude per source");
    for (st, &a) in stencils.iter().zip(amps) {
        for (c, w) in st.nonzero() {
            field.add(c[0], c[1], c[2], w * a * scale(c[0], c[1], c[2]));
        }
    }
}

/// Convenience: compute interpolation stencils and inject in one call.
pub fn inject_points(
    field: &mut Field,
    domain: &Domain,
    points: &SparsePoints,
    amps: &[f32],
    scale: impl Fn(usize, usize, usize) -> f32,
) {
    let stencils = trilinear_all(domain, points);
    inject(field, &stencils, amps, scale);
}

/// Gather one timestep of receiver measurements from the field:
/// `out[r] = Σ_p w(p) · u[p]`.
pub fn interpolate(field: &Field, stencils: &[InterpStencil], out: &mut [f32]) {
    assert_eq!(stencils.len(), out.len(), "one output slot per receiver");
    for (st, o) in stencils.iter().zip(out.iter_mut()) {
        let mut acc = 0.0f32;
        for (c, w) in st.nonzero() {
            acc += w * field.get(c[0], c[1], c[2]);
        }
        *o = acc;
    }
}

/// Convenience: compute stencils and interpolate in one call.
pub fn interpolate_points(
    field: &Field,
    domain: &Domain,
    points: &SparsePoints,
    out: &mut [f32],
) {
    let stencils = trilinear_all(domain, points);
    interpolate(field, &stencils, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_grid::Shape;

    fn dom() -> Domain {
        Domain::uniform(Shape::cube(11), 10.0)
    }

    #[test]
    fn inject_conserves_total_amplitude() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 2);
        let pts = SparsePoints::new(&d, vec![[33.0, 47.0, 52.0]]);
        inject_points(&mut f, &d, &pts, &[2.0], |_, _, _| 1.0);
        // Partition of unity ⇒ the grid receives exactly the injected amount.
        let total: f32 = f.nonzero_interior().iter().map(|&(x, y, z)| f.get(x, y, z)).sum();
        assert!((total - 2.0).abs() < 1e-5);
        assert_eq!(f.nonzero_interior().len(), 8);
    }

    #[test]
    fn inject_on_grid_point_hits_single_cell() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        let pts = SparsePoints::new(&d, vec![[30.0, 40.0, 50.0]]);
        inject_points(&mut f, &d, &pts, &[1.5], |_, _, _| 1.0);
        assert_eq!(f.nonzero_interior(), vec![(3, 4, 5)]);
        assert_eq!(f.get(3, 4, 5), 1.5);
    }

    #[test]
    fn inject_applies_pointwise_scale() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        let pts = SparsePoints::new(&d, vec![[35.0, 40.0, 50.0]]); // between x=3 and 4
        inject_points(&mut f, &d, &pts, &[1.0], |x, _, _| x as f32);
        // Corners (3,4,5) w=.5 scale 3 and (4,4,5) w=.5 scale 4.
        assert!((f.get(3, 4, 5) - 1.5).abs() < 1e-6);
        assert!((f.get(4, 4, 5) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_sources_accumulate() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        // Two sources sharing a cell: effects must add.
        let pts = SparsePoints::new(&d, vec![[34.0, 44.0, 54.0], [36.0, 46.0, 56.0]]);
        inject_points(&mut f, &d, &pts, &[1.0, 1.0], |_, _, _| 1.0);
        let total: f32 = f
            .nonzero_interior()
            .iter()
            .map(|&(x, y, z)| f.get(x, y, z))
            .sum();
        assert!((total - 2.0).abs() < 1e-5);
    }

    #[test]
    fn interpolate_reads_back_linear_field() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 1);
        for (x, y, z) in d.shape().iter() {
            let c = d.coord_of(x, y, z);
            f.set(x, y, z, 0.1 * c[0] - 0.2 * c[1] + 0.3 * c[2]);
        }
        let pts = SparsePoints::new(&d, vec![[12.3, 45.6, 78.9], [90.0, 10.0, 20.0]]);
        let mut out = vec![0.0f32; 2];
        interpolate_points(&f, &d, &pts, &mut out);
        for (i, c) in pts.coords().iter().enumerate() {
            let expect = 0.1 * c[0] - 0.2 * c[1] + 0.3 * c[2];
            assert!((out[i] - expect).abs() < 1e-2, "rec {i}: {} vs {expect}", out[i]);
        }
    }

    #[test]
    fn inject_then_interpolate_roundtrip_on_grid() {
        // A source exactly on a grid point, measured by a receiver at the
        // same position, reads back the injected amplitude.
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        let pts = SparsePoints::new(&d, vec![[50.0, 50.0, 50.0]]);
        inject_points(&mut f, &d, &pts, &[3.25], |_, _, _| 1.0);
        let mut out = vec![0.0f32];
        interpolate_points(&f, &d, &pts, &mut out);
        assert!((out[0] - 3.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one amplitude per source")]
    fn inject_checks_lengths() {
        let d = dom();
        let mut f = Field::zeros(d.shape(), 0);
        inject(&mut f, &[], &[1.0], |_, _, _| 1.0);
    }
}
