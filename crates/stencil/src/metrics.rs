//! Kernel cost models: FLOPs, bytes, arithmetic intensity.
//!
//! The paper's Fig. 11 places each kernel on a cache-aware roofline. We
//! reproduce the model analytically: FLOPs per point-update come from the
//! stencil structure; bytes per point-update come from a traffic model with
//! two limits — *no-reuse* (every stencil read misses) and *perfect-reuse*
//! (each array element is loaded once per sweep, the streaming lower bound
//! that spatial blocking approaches and temporal blocking beats by a factor
//! of the time-tile height).

/// Cost of one point-update of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations per point-update.
    pub flops: f64,
    /// Bytes moved per point-update with *no* cache reuse.
    pub bytes_no_reuse: f64,
    /// Bytes moved per point-update with perfect spatial reuse
    /// (compulsory/streaming traffic only).
    pub bytes_streaming: f64,
}

impl KernelCost {
    /// Arithmetic intensity (FLOP/byte) in the streaming limit.
    pub fn ai_streaming(&self) -> f64 {
        self.flops / self.bytes_streaming
    }

    /// Arithmetic intensity in the no-reuse limit.
    pub fn ai_no_reuse(&self) -> f64 {
        self.flops / self.bytes_no_reuse
    }

    /// Effective streaming bytes when a temporal tile of height `tt` keeps
    /// wavefields cache-resident across `tt` timesteps: the read-back of the
    /// previous level and the write-allocate traffic amortise over the tile.
    pub fn bytes_streaming_temporal(&self, tt: usize) -> f64 {
        assert!(tt >= 1);
        // Compulsory traffic per sweep divided by the reuse factor; parameter
        // fields still stream once per sweep, which we fold into the same
        // bound — this is the first-order model the paper's roofline uses.
        self.bytes_streaming / tt as f64
    }
}

/// FLOPs of a symmetric star Laplacian contribution of radius `r`:
/// per axis: `r` (pair adds) + `r` muls + `r` accumulate adds, plus the
/// centre multiply–add.
pub fn laplacian_flops(r: usize) -> f64 {
    (3 * 3 * r + 2) as f64
}

/// FLOPs of an antisymmetric first-derivative contribution of radius `r`.
pub fn first_diff_flops(r: usize) -> f64 {
    (3 * r) as f64
}

/// Cost of the isotropic acoustic update (paper §III-A) at space order `so`.
///
/// Update: `u⁺ = damp-combined(2u − u⁻ + dt²/m·(Δu + src))`.
pub fn acoustic_cost(so: usize) -> KernelCost {
    let r = so / 2;
    // Laplacian + 2nd-order time update (~8 flops: 2u - um1, mul dt²/m,
    // damping multiply-adds).
    let flops = laplacian_flops(r) + 8.0;
    let f = 4.0; // sizeof f32
    // Reads: u (2r+1 per axis but streaming = 1), u⁻, m, damp; write u⁺
    // (+ write-allocate read).
    let bytes_streaming = f * (1.0 + 1.0 + 1.0 + 1.0 + 2.0);
    let bytes_no_reuse = f * ((6 * r + 1) as f64 + 1.0 + 1.0 + 1.0 + 2.0);
    KernelCost {
        flops,
        bytes_no_reuse,
        bytes_streaming,
    }
}

/// Cost of the TTI pseudo-acoustic update (paper §III-B) at space order `so`.
///
/// Two coupled fields, rotated Laplacians built from cascaded first
/// derivatives with per-point trigonometric coefficient combinations —
/// the operation count grows steeply ("increases the operation count
/// drastically", §III-B).
pub fn tti_cost(so: usize) -> KernelCost {
    let r = so / 2;
    // Per field: 3 first-derivative cascades in rotated frame (9 first
    // diffs) + rotation algebra (~30 flops) + time update (~10).
    let per_field = 9.0 * first_diff_flops(r) + 30.0 + 10.0;
    let flops = 2.0 * per_field;
    let f = 4.0;
    // Streams: p, p⁻, q, q⁻ reads; p⁺, q⁺ writes (+allocate); m, ε, δ, θ, φ,
    // damp parameter streams.
    let bytes_streaming = f * (4.0 + 4.0 + 6.0);
    let bytes_no_reuse = f * (2.0 * (6 * r + 1) as f64 + 2.0 + 4.0 + 6.0);
    KernelCost {
        flops,
        bytes_no_reuse,
        bytes_streaming,
    }
}

/// Cost of the elastic velocity–stress update (paper §III-C) at space
/// order `so`, averaged per grid point over the 9 coupled fields.
pub fn elastic_cost(so: usize) -> KernelCost {
    let r = so / 2;
    // v update: 3 components × 3 staggered diffs; τ update: 6 components
    // built from 9 velocity derivatives + Lamé algebra.
    let flops = 9.0 * first_diff_flops(r) + 9.0 * first_diff_flops(r) + 40.0;
    let f = 4.0;
    // 9 wavefields read+written (write-allocate), 3 parameter streams.
    let bytes_streaming = f * (9.0 * 3.0 + 3.0);
    let bytes_no_reuse = f * (9.0 * (2 * r + 2) as f64 + 3.0);
    KernelCost {
        flops,
        bytes_no_reuse,
        bytes_streaming,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acoustic_ai_grows_with_order() {
        let a4 = acoustic_cost(4);
        let a8 = acoustic_cost(8);
        let a12 = acoustic_cost(12);
        assert!(a4.ai_streaming() < a8.ai_streaming());
        assert!(a8.ai_streaming() < a12.ai_streaming());
    }

    #[test]
    fn streaming_bound_is_below_no_reuse() {
        for so in [4, 8, 12] {
            for c in [acoustic_cost(so), tti_cost(so), elastic_cost(so)] {
                assert!(c.bytes_streaming < c.bytes_no_reuse);
                assert!(c.ai_streaming() > c.ai_no_reuse());
            }
        }
    }

    #[test]
    fn tti_is_compute_heavier_than_acoustic() {
        // §III-B: the rotated Laplacian "increases the operation count
        // drastically".
        for so in [4, 8, 12] {
            assert!(tti_cost(so).flops > 2.0 * acoustic_cost(so).flops);
        }
    }

    #[test]
    fn elastic_moves_most_data() {
        // §III-C: "increases the data movement drastically (one or two
        // versus nine state parameters)".
        for so in [4, 8, 12] {
            assert!(elastic_cost(so).bytes_streaming > 3.0 * acoustic_cost(so).bytes_streaming);
        }
    }

    #[test]
    fn temporal_reuse_divides_traffic() {
        let c = acoustic_cost(8);
        let b1 = c.bytes_streaming_temporal(1);
        let b4 = c.bytes_streaming_temporal(4);
        assert_eq!(b1, c.bytes_streaming);
        assert!((b4 - c.bytes_streaming / 4.0).abs() < 1e-12);
    }

    #[test]
    fn acoustic_low_ai_is_memory_bound_regime() {
        // The discretised acoustic equation is "generally memory-bound"
        // (§III-A): AI below ~10 flop/byte even in the streaming limit.
        assert!(acoustic_cost(4).ai_streaming() < 10.0);
    }

    #[test]
    #[should_panic]
    fn temporal_reuse_requires_positive_tile() {
        let _ = acoustic_cost(4).bytes_streaming_temporal(0);
    }
}
