//! Pencil-granularity SIMD kernels: explicit fixed-width lanes over whole
//! contiguous `z`-rows.
//!
//! These kernels are the [`crate::backend::Portable`] backend — one of the
//! three runtime-selectable [`crate::backend::KernelBackend`]
//! implementations (per-point `Scalar`, this module, and the explicit
//! AVX2-intrinsics [`crate::avx2`] module). Backend selection order and the
//! `--kernel` > `TEMPEST_KERNEL` > detected-best override precedence are
//! documented in [`crate::backend`].
//!
//! The per-point kernels in [`crate::kernels`] are correct but ask a lot of
//! the compiler: every call re-proves slice bounds for `2·r·3 + 1` indexed
//! loads and re-loads the weight values, and the surrounding `z` loop only
//! vectorises when LLVM can see through all of it. This module instead works
//! at the granularity the paper's Listing 4 assumes ("SIMD vectorized over
//! the z loop"): one kernel call computes a whole contiguous pencil.
//!
//! Three ideas, in order of importance:
//!
//! 1. **Slice windows per offset.** For a row of `n` outputs starting at
//!    linear index `i0`, each stencil offset `±o` contributes the window
//!    `u[i0±o .. i0±o+n]`. All windows are materialised (and bounds-checked)
//!    *once per row*; the inner loop then runs over pre-validated slices and
//!    carries no per-point checks at all.
//! 2. **Vectorizer-friendly row loops.** With the windows hoisted, each
//!    kernel body is a single pass over `j` (compile-time radius) or one
//!    pass per stencil offset (dynamic radius) whose iterations are
//!    independent — the exact shape LLVM's loop vectorizer compiles to
//!    [`LANE`]-wide vector loads, multiplies and adds. This beats hand-rolled
//!    lane values on stable Rust: an explicit `[f32; W]` dataflow gets
//!    scalarized by SROA and only partially re-vectorized by SLP (measured
//!    ~3.6× slower than the vectorizer's own output on the same loop; see
//!    `DESIGN.md` §10), whereas the loop form keeps everything in vector
//!    registers. The [`Lane`] type below pins the width-`W` semantics the
//!    vectorizer must honour and is asserted against the kernels in tests;
//!    the same per-lane semantics are realised with real 256-bit intrinsics
//!    by the [`crate::avx2`] kernels, so `Lane` is no longer "only a spec" —
//!    it is the contract both vector backends are tested against.
//! 3. **Bitwise equality.** Every output element executes *exactly* the
//!    floating-point operation sequence of the corresponding scalar kernel:
//!    the same accumulation chain (`acc += w[k] * (…)` in the same `k`
//!    order), no reassociation, no FMA contraction (vectorizing a loop of
//!    independent iterations changes neither). A pencil kernel is therefore
//!    bitwise-interchangeable with a per-point loop over its scalar twin —
//!    the property every schedule-equivalence test in this workspace is
//!    built on, asserted via `to_bits()` in the tests below.
//!
//! Alignment: the kernels accept any `i0`, but grids allocated with
//! lane-aligned `z` rows (`tempest_grid::Array3::from_shape_lane_aligned`,
//! `LevelRing::new_lane_aligned`) give every pencil the same lane phase,
//! which keeps the vector body/epilogue split uniform across rows and lets
//! aligned loads hit full cache lines.

use crate::kernels::AxisWeights;

/// The lane width the pencil kernels are laid out for: 8 × f32 = 256 bits
/// (one AVX2 register; on narrower targets LLVM splits it into two 128-bit
/// ops). Grid containers pad `z` rows to multiples of this width.
pub const LANE: usize = 8;

/// A fixed-width bundle of `W` lanes of `f32`, computed elementwise.
///
/// This is the workspace's hermetic stand-in for `std::simd::f32xW`: a plain
/// `[f32; W]` with `#[inline(always)]` elementwise arithmetic. It is the
/// *executable specification* of one vector-lane step of the pencil kernels:
/// the tests below recompute kernel rows lane-by-lane through this type and
/// assert bitwise agreement with the loop-vectorized kernels.
///
/// **No FMA contraction:** [`mul_add`](Self::mul_add) is defined as a
/// multiply followed by a separate add. Contracting it into a fused op would
/// change results and break the bitwise-equality contract with the scalar
/// kernels (which Rust compiles without contraction).
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct Lane<const W: usize>(pub [f32; W]);

impl<const W: usize> Lane<W> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub const fn splat(v: f32) -> Self {
        Lane([v; W])
    }

    /// Load `W` consecutive values from `src[at..at + W]` without a bounds
    /// check.
    ///
    /// # Safety
    /// `at + W <= src.len()` must hold (debug-asserted). The pencil kernels
    /// guarantee it by validating each row window once before the lane loop.
    #[inline(always)]
    pub unsafe fn load(src: &[f32], at: usize) -> Self {
        debug_assert!(at + W <= src.len(), "lane load out of bounds");
        let mut lanes = [0.0f32; W];
        std::ptr::copy_nonoverlapping(src.as_ptr().add(at), lanes.as_mut_ptr(), W);
        Lane(lanes)
    }

    /// Store the lanes to `dst[at..at + W]` without a bounds check.
    ///
    /// # Safety
    /// `at + W <= dst.len()` must hold (debug-asserted); see [`load`](Self::load).
    #[inline(always)]
    pub unsafe fn store(self, dst: &mut [f32], at: usize) {
        debug_assert!(at + W <= dst.len(), "lane store out of bounds");
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), dst.as_mut_ptr().add(at), W);
    }

    /// Elementwise `self * a + b` as two separate ops (kept unfused so each
    /// lane matches the scalar kernels bitwise).
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> std::ops::$trait for Lane<W> {
            type Output = Lane<W>;
            #[inline(always)]
            fn $method(self, rhs: Lane<W>) -> Lane<W> {
                let mut out = [0.0f32; W];
                let mut i = 0;
                while i < W {
                    out[i] = self.0[i] $op rhs.0[i];
                    i += 1;
                }
                Lane(out)
            }
        }
    };
}

lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);

/// The window `u[start .. start + n]`; the single row-level bounds check of
/// each offset (panics exactly when the scalar kernel would).
#[inline(always)]
fn window(u: &[f32], start: usize, n: usize) -> &[f32] {
    &u[start..start + n]
}

/// One accumulation pass of a multipass (dynamic-radius) kernel:
/// `out[j] += wk * (p[j] + m[j])` over the whole row — the same term, in the
/// same chain position, the scalar kernel adds for this offset pair.
#[inline(always)]
fn axpy_sum(out: &mut [f32], wk: f32, p: &[f32], m: &[f32]) {
    for ((o, &pv), &mv) in out.iter_mut().zip(p).zip(m) {
        *o += wk * (pv + mv);
    }
}

/// As [`axpy_sum`] but with a difference: `out[j] += wk * (p[j] - m[j])`.
#[inline(always)]
fn axpy_diff(out: &mut [f32], wk: f32, p: &[f32], m: &[f32]) {
    for ((o, &pv), &mv) in out.iter_mut().zip(p).zip(m) {
        *o += wk * (pv - mv);
    }
}

/// Second derivative along one axis for a whole pencil: `out[j]` receives
/// the value of [`second_diff_axis`](crate::kernels::second_diff_axis) at
/// linear index `i0 + j` (stride `s`, dynamic radius).
pub fn second_diff_pencil(u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
    let n = out.len();
    let c = window(u, i0, n);
    for (o, &cv) in out.iter_mut().zip(c) {
        *o = w.center * cv;
    }
    for (k, &wk) in w.side.iter().enumerate() {
        let o = (k + 1) * s;
        axpy_sum(out, wk, window(u, i0 + o, n), window(u, i0 - o, n));
    }
}

/// [`second_diff_pencil`] with compile-time radius (fully unrolled weights).
pub fn second_diff_pencil_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    center: f32,
    side: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    let c = window(u, i0, n);
    let plus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + (k + 1) * s, n));
    let minus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - (k + 1) * s, n));
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = center * c[j];
        let mut k = 0;
        while k < R {
            acc += side[k] * (plus[k][j] + minus[k][j]);
            k += 1;
        }
        *o = acc;
    }
}

/// 3-D Laplacian for a whole pencil, compile-time radius: `out[j]` receives
/// [`laplacian_at_r`] at `i0 + j` (strides `sx`, `sy`, `sz = 1`; `center` is
/// the combined centre weight, as in the scalar kernel).
#[allow(clippy::too_many_arguments)]
pub fn laplacian_pencil_r<const R: usize>(
    u: &[f32],
    i0: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32; R],
    wy: &[f32; R],
    wz: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    let c = window(u, i0, n);
    let xp: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + (k + 1) * sx, n));
    let xm: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - (k + 1) * sx, n));
    let yp: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + (k + 1) * sy, n));
    let ym: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - (k + 1) * sy, n));
    let zp: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + (k + 1), n));
    let zm: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - (k + 1), n));
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = center * c[j];
        let mut k = 0;
        while k < R {
            acc += wx[k] * (xp[k][j] + xm[k][j]);
            k += 1;
        }
        k = 0;
        while k < R {
            acc += wy[k] * (yp[k][j] + ym[k][j]);
            k += 1;
        }
        k = 0;
        while k < R {
            acc += wz[k] * (zp[k][j] + zm[k][j]);
            k += 1;
        }
        *o = acc;
    }
}

/// 3-D Laplacian for a whole pencil, dynamic radius (mirror of
/// [`laplacian_at`]; the fallback for space orders without a monomorphised
/// propagator kernel).
#[allow(clippy::too_many_arguments)]
pub fn laplacian_pencil(
    u: &[f32],
    i0: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32],
    wy: &[f32],
    wz: &[f32],
    out: &mut [f32],
) {
    let n = out.len();
    let c = window(u, i0, n);
    for (o, &cv) in out.iter_mut().zip(c) {
        *o = center * cv;
    }
    for (w, s) in [(wx, sx), (wy, sy), (wz, 1)] {
        for (k, &wk) in w.iter().enumerate() {
            let o = (k + 1) * s;
            axpy_sum(out, wk, window(u, i0 + o, n), window(u, i0 - o, n));
        }
    }
}

/// Centred first derivative for a whole pencil (antisymmetric weights,
/// dynamic radius; mirror of [`first_diff_axis`]).
pub fn first_diff_pencil(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    out.fill(0.0);
    for (k, &wk) in w.iter().enumerate() {
        let o = (k + 1) * s;
        axpy_diff(out, wk, window(u, i0 + o, n), window(u, i0 - o, n));
    }
}

/// Mixed second derivative `∂²/∂a∂b` for a whole pencil, compile-time radius
/// (mirror of [`cross_diff_r`]; the TTI rotated-Laplacian cross terms).
pub fn cross_diff_pencil_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s1: usize,
    s2: usize,
    w1: &[f32; R],
    w2: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    // Four (R × R) window grids: ±o1 ±o2. `i0 + o1 - o2` / `i0 - o1 + o2`
    // stay in bounds exactly when the scalar kernel's accesses do.
    let pp: [[&[f32]; R]; R] = std::array::from_fn(|j| {
        std::array::from_fn(|k| window(u, i0 + (j + 1) * s1 + (k + 1) * s2, n))
    });
    let mm: [[&[f32]; R]; R] = std::array::from_fn(|j| {
        std::array::from_fn(|k| window(u, i0 - (j + 1) * s1 - (k + 1) * s2, n))
    });
    let pm: [[&[f32]; R]; R] = std::array::from_fn(|j| {
        std::array::from_fn(|k| window(u, i0 + (j + 1) * s1 - (k + 1) * s2, n))
    });
    let mp: [[&[f32]; R]; R] = std::array::from_fn(|j| {
        std::array::from_fn(|k| window(u, i0 - (j + 1) * s1 + (k + 1) * s2, n))
    });
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        let mut j = 0;
        while j < R {
            let mut inner = 0.0f32;
            let mut k = 0;
            while k < R {
                inner += w2[k]
                    * ((pp[j][k][i] + mm[j][k][i]) - (pm[j][k][i] + mp[j][k][i]));
                k += 1;
            }
            acc += w1[j] * inner;
            j += 1;
        }
        *o = acc;
    }
}

/// Staggered forward first derivative (at `i + ½`) for a whole pencil,
/// dynamic radius (mirror of [`staggered_diff_fwd`]).
pub fn staggered_pencil_fwd(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    out.fill(0.0);
    for (k, &wk) in w.iter().enumerate() {
        axpy_diff(out, wk, window(u, i0 + (k + 1) * s, n), window(u, i0 - k * s, n));
    }
}

/// Staggered backward first derivative (at `i − ½`) for a whole pencil,
/// dynamic radius (mirror of [`staggered_diff_bwd`]).
pub fn staggered_pencil_bwd(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    out.fill(0.0);
    for (k, &wk) in w.iter().enumerate() {
        axpy_diff(out, wk, window(u, i0 + k * s, n), window(u, i0 - (k + 1) * s, n));
    }
}

/// [`staggered_pencil_fwd`] with compile-time radius.
pub fn staggered_pencil_fwd_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    w: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    let plus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + (k + 1) * s, n));
    let minus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - k * s, n));
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        let mut k = 0;
        while k < R {
            acc += w[k] * (plus[k][j] - minus[k][j]);
            k += 1;
        }
        *o = acc;
    }
}

/// [`staggered_pencil_bwd`] with compile-time radius.
pub fn staggered_pencil_bwd_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    w: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    let plus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 + k * s, n));
    let minus: [&[f32]; R] = std::array::from_fn(|k| window(u, i0 - (k + 1) * s, n));
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        let mut k = 0;
        while k < R {
            acc += w[k] * (plus[k][j] - minus[k][j]);
            k += 1;
        }
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{
        cross_diff, first_derivative_weights, first_diff_axis, laplacian_at, laplacian_at_r,
        second_diff_axis, staggered_diff_bwd, staggered_diff_fwd, staggered_weights,
    };
    use tempest_grid::Rng64;

    /// A seeded random padded volume: every value non-trivial so bitwise
    /// comparisons are meaningful.
    fn volume(seed: u64, nx: usize, ny: usize, nz: usize) -> (Vec<f32>, usize, usize) {
        let mut rng = Rng64::new(seed);
        let u: Vec<f32> = (0..nx * ny * nz)
            .map(|_| rng.next_f32() * 2.0 - 1.0)
            .collect();
        (u, ny * nz, nz)
    }

    /// Row starts at every lane phase plus remainder lengths: unaligned
    /// bases, rows shorter than a lane, rows with a sub-lane tail.
    fn row_cases(nz: usize, r: usize) -> Vec<(usize, usize)> {
        let mut cases = vec![
            (r, nz - 2 * r),          // full interior row
            (r + 1, nz - 2 * r - 1),  // unaligned base
            (r + 3, 5),               // shorter than one lane
            (r, LANE),                // exactly one lane
            (r + 2, LANE + 3),        // lane + tail
            (r, 0),                   // empty row is a no-op
        ];
        cases.retain(|&(z0, n)| z0 + n + r <= nz);
        cases
    }

    #[test]
    fn lane_ops_are_elementwise() {
        let a = Lane::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = Lane::<4>([0.5, 0.25, -1.0, 2.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 2.0, 6.0]);
        assert_eq!((a - b).0, [0.5, 1.75, 4.0, 2.0]);
        assert_eq!((a * b).0, [0.5, 0.5, -3.0, 8.0]);
        let c = Lane::<4>::splat(1.0);
        assert_eq!(a.mul_add(b, c).0, [1.5, 1.5, -2.0, 9.0]);
    }

    #[test]
    fn lane_load_store_roundtrip() {
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 12];
        // SAFETY: 3 + 8 <= 12 on both sides.
        unsafe { Lane::<8>::load(&src, 3).store(&mut dst, 3) };
        assert_eq!(&dst[3..11], &src[3..11]);
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[11], 0.0);
    }

    #[test]
    fn mul_add_is_unfused() {
        // Pick values where fma(a, b, c) != a*b + c in f32: the contract is
        // two roundings, exactly like the scalar kernels.
        let a = 1.0f32 + f32::EPSILON;
        let b = 1.0f32 - f32::EPSILON;
        let c = -1.0f32;
        let lane = Lane::<1>::splat(a).mul_add(Lane::splat(b), Lane::splat(c));
        assert_eq!(lane.0[0].to_bits(), (a * b + c).to_bits());
        assert_ne!(lane.0[0].to_bits(), a.mul_add(b, c).to_bits());
    }

    /// [`Lane`] is the executable spec of one vector step: recomputing a
    /// kernel row lane-by-lane through explicit `Lane` ops must reproduce the
    /// loop-vectorized kernel bit-for-bit (same chain, unfused `mul_add`).
    #[test]
    fn lane_spec_matches_laplacian_pencil_bitwise() {
        let (nx, ny, nz) = (20, 20, 40);
        let (u, sx, sy) = volume(31, nx, ny, nz);
        const R: usize = 4;
        let w = AxisWeights::second_derivative(2 * R, 4.0);
        let side: [f32; R] = w.side_array();
        let center = 3.0 * w.center;
        let n = nz - 2 * R;
        let i0 = (R * ny + R) * nz + R;
        let mut out = vec![0.0f32; n];
        laplacian_pencil_r::<R>(&u, i0, sx, sy, center, &side, &side, &side, &mut out);
        let mut spec = vec![0.0f32; n];
        let lanes = n - n % LANE;
        let mut j = 0;
        while j < lanes {
            // SAFETY: j + LANE <= n and every window offset stays in bounds
            // (the kernel call above validated the same accesses).
            unsafe {
                let mut acc = Lane::<LANE>::splat(center) * Lane::load(&u[i0..], j);
                for s in [sx, sy, 1] {
                    for (k, &wk) in side.iter().enumerate() {
                        let o = (k + 1) * s;
                        let sum = Lane::load(&u[i0 + o..], j) + Lane::load(&u[i0 - o..], j);
                        acc = acc + Lane::splat(wk) * sum;
                    }
                }
                acc.store(&mut spec, j);
            }
            j += LANE;
        }
        for (jj, sp) in spec.iter_mut().enumerate().skip(lanes) {
            *sp = laplacian_at_r::<R>(&u, i0 + jj, sx, sy, center, &side, &side, &side);
        }
        for (j, (&a, &b)) in out.iter().zip(&spec).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "lane spec diverges at j={j}");
        }
    }

    #[test]
    fn second_diff_pencil_matches_scalar_bitwise() {
        let (nx, ny, nz) = (20, 20, 37);
        let (u, sx, sy) = volume(7, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w = AxisWeights::second_derivative(order, 7.5);
            for s in [sx, sy, 1usize] {
                for &(z0, n) in &row_cases(nz, r) {
                    let i0 = (r * ny + r) * nz + z0;
                    let mut out = vec![0.0f32; n];
                    second_diff_pencil(&u, i0, s, &w, &mut out);
                    for (j, &v) in out.iter().enumerate() {
                        let want = second_diff_axis(&u, i0 + j, s, &w);
                        assert_eq!(v.to_bits(), want.to_bits(), "order {order} s {s} j {j}");
                    }
                    // Const-radius variant must agree too.
                    let mut out_r = vec![0.0f32; n];
                    match r {
                        2 => second_diff_pencil_r::<2>(
                            &u, i0, s, w.center, &w.side_array(), &mut out_r,
                        ),
                        4 => second_diff_pencil_r::<4>(
                            &u, i0, s, w.center, &w.side_array(), &mut out_r,
                        ),
                        6 => second_diff_pencil_r::<6>(
                            &u, i0, s, w.center, &w.side_array(), &mut out_r,
                        ),
                        _ => unreachable!(),
                    }
                    for (a, b) in out.iter().zip(&out_r) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn laplacian_pencil_matches_scalar_bitwise() {
        let (nx, ny, nz) = (22, 21, 41);
        let (u, sx, sy) = volume(11, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w = AxisWeights::second_derivative(order, 3.0);
            let center = 3.0 * w.center;
            for &(z0, n) in &row_cases(nz, r) {
                let i0 = (r * ny + r) * nz + z0;
                let mut out = vec![0.0f32; n];
                let mut out_r = vec![0.0f32; n];
                laplacian_pencil(&u, i0, sx, sy, center, &w.side, &w.side, &w.side, &mut out);
                match r {
                    2 => {
                        let a: [f32; 2] = w.side_array();
                        laplacian_pencil_r::<2>(&u, i0, sx, sy, center, &a, &a, &a, &mut out_r);
                    }
                    4 => {
                        let a: [f32; 4] = w.side_array();
                        laplacian_pencil_r::<4>(&u, i0, sx, sy, center, &a, &a, &a, &mut out_r);
                    }
                    6 => {
                        let a: [f32; 6] = w.side_array();
                        laplacian_pencil_r::<6>(&u, i0, sx, sy, center, &a, &a, &a, &mut out_r);
                    }
                    _ => unreachable!(),
                }
                for (j, &v) in out.iter().enumerate() {
                    let want = laplacian_at(&u, i0 + j, sx, sy, center, &w.side, &w.side, &w.side);
                    assert_eq!(v.to_bits(), want.to_bits(), "order {order} j {j}");
                    assert_eq!(out_r[j].to_bits(), want.to_bits(), "order {order} j {j} (_r)");
                }
            }
        }
    }

    #[test]
    fn first_diff_pencil_matches_scalar_bitwise() {
        let (nx, ny, nz) = (20, 20, 33);
        let (u, sx, _sy) = volume(13, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w = first_derivative_weights(order, 2.5);
            for &(z0, n) in &row_cases(nz, r) {
                let i0 = (r * ny + r) * nz + z0;
                let mut out = vec![0.0f32; n];
                first_diff_pencil(&u, i0, sx, &w, &mut out);
                for (j, &v) in out.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        first_diff_axis(&u, i0 + j, sx, &w).to_bits(),
                        "order {order} j {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_diff_pencil_matches_scalar_bitwise() {
        let (nx, ny, nz) = (22, 22, 35);
        let (u, sx, sy) = volume(17, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w = first_derivative_weights(order, 1.5);
            for &(z0, n) in &row_cases(nz, r) {
                let i0 = (r * ny + r) * nz + z0;
                for (s1, s2) in [(sx, sy), (sx, 1usize), (sy, 1usize)] {
                    let mut out = vec![0.0f32; n];
                    match r {
                        2 => {
                            let a: [f32; 2] = w.clone().try_into().unwrap();
                            cross_diff_pencil_r::<2>(&u, i0, s1, s2, &a, &a, &mut out);
                        }
                        4 => {
                            let a: [f32; 4] = w.clone().try_into().unwrap();
                            cross_diff_pencil_r::<4>(&u, i0, s1, s2, &a, &a, &mut out);
                        }
                        6 => {
                            let a: [f32; 6] = w.clone().try_into().unwrap();
                            cross_diff_pencil_r::<6>(&u, i0, s1, s2, &a, &a, &mut out);
                        }
                        _ => unreachable!(),
                    }
                    for (j, &v) in out.iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            cross_diff(&u, i0 + j, s1, s2, &w, &w).to_bits(),
                            "order {order} strides ({s1},{s2}) j {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn staggered_pencils_match_scalar_bitwise() {
        let (nx, ny, nz) = (20, 20, 39);
        let (u, sx, sy) = volume(23, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w = staggered_weights(order, 5.0);
            for &(z0, n) in &row_cases(nz, r) {
                let i0 = (r * ny + r) * nz + z0;
                for s in [sx, sy, 1usize] {
                    let mut f = vec![0.0f32; n];
                    let mut b = vec![0.0f32; n];
                    staggered_pencil_fwd(&u, i0, s, &w, &mut f);
                    staggered_pencil_bwd(&u, i0, s, &w, &mut b);
                    let mut f_r = vec![0.0f32; n];
                    let mut b_r = vec![0.0f32; n];
                    match r {
                        2 => {
                            let a: [f32; 2] = w.clone().try_into().unwrap();
                            staggered_pencil_fwd_r::<2>(&u, i0, s, &a, &mut f_r);
                            staggered_pencil_bwd_r::<2>(&u, i0, s, &a, &mut b_r);
                        }
                        4 => {
                            let a: [f32; 4] = w.clone().try_into().unwrap();
                            staggered_pencil_fwd_r::<4>(&u, i0, s, &a, &mut f_r);
                            staggered_pencil_bwd_r::<4>(&u, i0, s, &a, &mut b_r);
                        }
                        6 => {
                            let a: [f32; 6] = w.clone().try_into().unwrap();
                            staggered_pencil_fwd_r::<6>(&u, i0, s, &a, &mut f_r);
                            staggered_pencil_bwd_r::<6>(&u, i0, s, &a, &mut b_r);
                        }
                        _ => unreachable!(),
                    }
                    for (j, (&vf, &vb)) in f.iter().zip(&b).enumerate() {
                        let wf = staggered_diff_fwd(&u, i0 + j, s, &w);
                        let wb = staggered_diff_bwd(&u, i0 + j, s, &w);
                        assert_eq!(vf.to_bits(), wf.to_bits(), "fwd order {order} s {s} j {j}");
                        assert_eq!(vb.to_bits(), wb.to_bits(), "bwd order {order} s {s} j {j}");
                        assert_eq!(f_r[j].to_bits(), wf.to_bits());
                        assert_eq!(b_r[j].to_bits(), wb.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn window_out_of_bounds_panics_at_row_level() {
        let u = vec![0.0f32; 64];
        let mut out = vec![0.0f32; 8];
        // i0 too close to the end: the row-level window check must fire.
        laplacian_pencil(&u, 60, 16, 4, 1.0, &[0.5], &[0.5], &[0.5], &mut out);
    }
}
