//! Explicit AVX2 (256-bit) intrinsic kernels — the `Avx2` backend's row
//! bodies.
//!
//! Each function is the hand-vectorized twin of one pencil kernel in
//! [`crate::simd`]: the same hoisted offset windows, validated once per row,
//! then an 8-lane main loop of unaligned 256-bit loads
//! (`_mm256_loadu_ps`) with **separate** multiply and add intrinsics
//! (`_mm256_mul_ps` + `_mm256_add_ps`, never `_mm256_fmadd_ps`). Rust does
//! not enable floating-point contraction, so each lane executes exactly the
//! scalar kernel's accumulation chain — two roundings per `w·(a±b)` term, in
//! the same `k` order — and the results are bitwise identical to
//! [`crate::kernels`]. The sub-lane tail of every row is finished by the
//! per-point scalar kernel itself, which is bitwise-equal by definition.
//!
//! # Safety
//!
//! Every function here is `unsafe` and `#[target_feature(enable = "avx2")]`:
//! calling one on a CPU without AVX2 is undefined behaviour. The only
//! callers are the [`crate::backend::Avx2`] backend methods, which assert
//! `is_x86_feature_detected!("avx2")` before entering. Bounds safety is
//! re-established inside each function by the row-level window checks (the
//! same checks, panicking at the same inputs, as the portable kernels);
//! after they pass, every pointer the lane loop dereferences is in bounds.

// Scalar tails index `out[jj]` and read `u` at `i0 + jj` with the same
// counter; the range loop keeps them visibly in lockstep with the scalar
// kernels they delegate to.
#![allow(clippy::needless_range_loop)]

use core::arch::x86_64::*;

use crate::kernels::{self, AxisWeights};
use crate::simd::LANE;

/// Row-level bounds check for one offset window `u[start .. start + n]` —
/// panics exactly when the portable kernel's `window()` (and hence the
/// scalar kernel's indexing) would.
#[inline(always)]
fn check_window(u: &[f32], start: usize, n: usize) {
    let _ = &u[start..start + n];
}

/// 3-D Laplacian row, compile-time radius (twin of
/// [`crate::simd::laplacian_pencil_r`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub unsafe fn laplacian_row_r<const R: usize>(
    u: &[f32],
    i0: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32; R],
    wy: &[f32; R],
    wz: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    check_window(u, i0, n);
    for k in 0..R {
        for s in [sx, sy, 1] {
            let o = (k + 1) * s;
            check_window(u, i0 + o, n);
            check_window(u, i0 - o, n);
        }
    }
    let p = u.as_ptr();
    let vc = _mm256_set1_ps(center);
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_mul_ps(vc, _mm256_loadu_ps(p.add(i0 + j)));
        for (w, s) in [(&wx[..], sx), (&wy[..], sy), (&wz[..], 1)] {
            for (k, &wk) in w.iter().enumerate() {
                let o = (k + 1) * s;
                let sum = _mm256_add_ps(
                    _mm256_loadu_ps(p.add(i0 + o + j)),
                    _mm256_loadu_ps(p.add(i0 - o + j)),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), sum));
            }
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::laplacian_at_r::<R>(u, i0 + jj, sx, sy, center, wx, wy, wz);
    }
}

/// 3-D Laplacian row, dynamic radius (twin of
/// [`crate::simd::laplacian_pencil`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub unsafe fn laplacian_row(
    u: &[f32],
    i0: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32],
    wy: &[f32],
    wz: &[f32],
    out: &mut [f32],
) {
    let n = out.len();
    check_window(u, i0, n);
    for (w, s) in [(wx, sx), (wy, sy), (wz, 1)] {
        for k in 0..w.len() {
            let o = (k + 1) * s;
            check_window(u, i0 + o, n);
            check_window(u, i0 - o, n);
        }
    }
    let p = u.as_ptr();
    let vc = _mm256_set1_ps(center);
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_mul_ps(vc, _mm256_loadu_ps(p.add(i0 + j)));
        for (w, s) in [(wx, sx), (wy, sy), (wz, 1)] {
            for (k, &wk) in w.iter().enumerate() {
                let o = (k + 1) * s;
                let sum = _mm256_add_ps(
                    _mm256_loadu_ps(p.add(i0 + o + j)),
                    _mm256_loadu_ps(p.add(i0 - o + j)),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), sum));
            }
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::laplacian_at(u, i0 + jj, sx, sy, center, wx, wy, wz);
    }
}

/// Second derivative along one axis for a whole row, compile-time radius
/// (twin of [`crate::simd::second_diff_pencil_r`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn second_diff_row_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    center: f32,
    side: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    check_window(u, i0, n);
    for k in 0..R {
        let o = (k + 1) * s;
        check_window(u, i0 + o, n);
        check_window(u, i0 - o, n);
    }
    let p = u.as_ptr();
    let vc = _mm256_set1_ps(center);
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_mul_ps(vc, _mm256_loadu_ps(p.add(i0 + j)));
        for (k, &wk) in side.iter().enumerate() {
            let o = (k + 1) * s;
            let sum = _mm256_add_ps(
                _mm256_loadu_ps(p.add(i0 + o + j)),
                _mm256_loadu_ps(p.add(i0 - o + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), sum));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::second_diff_axis_r::<R>(u, i0 + jj, s, center, side);
    }
}

/// Second derivative along one axis, dynamic radius (twin of
/// [`crate::simd::second_diff_pencil`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn second_diff_row(u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
    let n = out.len();
    check_window(u, i0, n);
    for k in 0..w.side.len() {
        let o = (k + 1) * s;
        check_window(u, i0 + o, n);
        check_window(u, i0 - o, n);
    }
    let p = u.as_ptr();
    let vc = _mm256_set1_ps(w.center);
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_mul_ps(vc, _mm256_loadu_ps(p.add(i0 + j)));
        for (k, &wk) in w.side.iter().enumerate() {
            let o = (k + 1) * s;
            let sum = _mm256_add_ps(
                _mm256_loadu_ps(p.add(i0 + o + j)),
                _mm256_loadu_ps(p.add(i0 - o + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), sum));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::second_diff_axis(u, i0 + jj, s, w);
    }
}

/// Centred first derivative for a whole row, dynamic radius (twin of
/// [`crate::simd::first_diff_pencil`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn first_diff_row(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    for k in 0..w.len() {
        let o = (k + 1) * s;
        check_window(u, i0 + o, n);
        check_window(u, i0 - o, n);
    }
    let p = u.as_ptr();
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &wk) in w.iter().enumerate() {
            let o = (k + 1) * s;
            let diff = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(i0 + o + j)),
                _mm256_loadu_ps(p.add(i0 - o + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), diff));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::first_diff_axis(u, i0 + jj, s, w);
    }
}

/// Mixed second derivative `∂²/∂a∂b` for a whole row, compile-time radius
/// (twin of [`crate::simd::cross_diff_pencil_r`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn cross_diff_row_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s1: usize,
    s2: usize,
    w1: &[f32; R],
    w2: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    for jx in 0..R {
        let o1 = (jx + 1) * s1;
        for k in 0..R {
            let o2 = (k + 1) * s2;
            check_window(u, i0 + o1 + o2, n);
            check_window(u, i0 - o1 - o2, n);
            check_window(u, i0 + o1 - o2, n);
            check_window(u, i0 - o1 + o2, n);
        }
    }
    let p = u.as_ptr();
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (jx, &wj) in w1.iter().enumerate() {
            let o1 = (jx + 1) * s1;
            let mut inner = _mm256_setzero_ps();
            for (k, &wk) in w2.iter().enumerate() {
                let o2 = (k + 1) * s2;
                let same = _mm256_add_ps(
                    _mm256_loadu_ps(p.add(i0 + o1 + o2 + j)),
                    _mm256_loadu_ps(p.add(i0 - o1 - o2 + j)),
                );
                let opposite = _mm256_add_ps(
                    _mm256_loadu_ps(p.add(i0 + o1 - o2 + j)),
                    _mm256_loadu_ps(p.add(i0 - o1 + o2 + j)),
                );
                inner = _mm256_add_ps(
                    inner,
                    _mm256_mul_ps(_mm256_set1_ps(wk), _mm256_sub_ps(same, opposite)),
                );
            }
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wj), inner));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::cross_diff_r::<R>(u, i0 + jj, s1, s2, w1, w2);
    }
}

/// Staggered forward first derivative (at `i + ½`) for a whole row,
/// compile-time radius (twin of [`crate::simd::staggered_pencil_fwd_r`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn staggered_fwd_row_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    w: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    for k in 0..R {
        check_window(u, i0 + (k + 1) * s, n);
        check_window(u, i0 - k * s, n);
    }
    let p = u.as_ptr();
    // Hoist the weight broadcasts and unroll ×2: two independent
    // accumulator chains per iteration keep the load ports busy (matching
    // the ILP the autovectorizer gives the portable twin).
    let mut wv = [_mm256_setzero_ps(); R];
    for k in 0..R {
        wv[k] = _mm256_set1_ps(w[k]);
    }
    let mut j = 0;
    while j + 2 * LANE <= n {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for (k, &wk) in wv.iter().enumerate() {
            let hi = i0 + (k + 1) * s + j;
            let lo = i0 - k * s + j;
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(p.add(hi)), _mm256_loadu_ps(p.add(lo)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(hi + LANE)),
                _mm256_loadu_ps(p.add(lo + LANE)),
            );
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(wk, d0));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(wk, d1));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc0);
        _mm256_storeu_ps(out.as_mut_ptr().add(j + LANE), acc1);
        j += 2 * LANE;
    }
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &wk) in wv.iter().enumerate() {
            let diff = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(i0 + (k + 1) * s + j)),
                _mm256_loadu_ps(p.add(i0 - k * s + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wk, diff));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::staggered_diff_fwd_r::<R>(u, i0 + jj, s, w);
    }
}

/// Staggered backward first derivative (at `i − ½`) for a whole row,
/// compile-time radius (twin of [`crate::simd::staggered_pencil_bwd_r`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn staggered_bwd_row_r<const R: usize>(
    u: &[f32],
    i0: usize,
    s: usize,
    w: &[f32; R],
    out: &mut [f32],
) {
    let n = out.len();
    for k in 0..R {
        check_window(u, i0 + k * s, n);
        check_window(u, i0 - (k + 1) * s, n);
    }
    let p = u.as_ptr();
    // Same hoisted-broadcast ×2 unroll as the forward twin.
    let mut wv = [_mm256_setzero_ps(); R];
    for k in 0..R {
        wv[k] = _mm256_set1_ps(w[k]);
    }
    let mut j = 0;
    while j + 2 * LANE <= n {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for (k, &wk) in wv.iter().enumerate() {
            let hi = i0 + k * s + j;
            let lo = i0 - (k + 1) * s + j;
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(p.add(hi)), _mm256_loadu_ps(p.add(lo)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(hi + LANE)),
                _mm256_loadu_ps(p.add(lo + LANE)),
            );
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(wk, d0));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(wk, d1));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc0);
        _mm256_storeu_ps(out.as_mut_ptr().add(j + LANE), acc1);
        j += 2 * LANE;
    }
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &wk) in wv.iter().enumerate() {
            let diff = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(i0 + k * s + j)),
                _mm256_loadu_ps(p.add(i0 - (k + 1) * s + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wk, diff));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::staggered_diff_bwd_r::<R>(u, i0 + jj, s, w);
    }
}

/// Staggered forward derivative, dynamic radius (twin of
/// [`crate::simd::staggered_pencil_fwd`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn staggered_fwd_row(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    for k in 0..w.len() {
        check_window(u, i0 + (k + 1) * s, n);
        check_window(u, i0 - k * s, n);
    }
    let p = u.as_ptr();
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &wk) in w.iter().enumerate() {
            let diff = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(i0 + (k + 1) * s + j)),
                _mm256_loadu_ps(p.add(i0 - k * s + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), diff));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::staggered_diff_fwd(u, i0 + jj, s, w);
    }
}

/// Staggered backward derivative, dynamic radius (twin of
/// [`crate::simd::staggered_pencil_bwd`]).
///
/// # Safety
/// The host CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn staggered_bwd_row(u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
    let n = out.len();
    for k in 0..w.len() {
        check_window(u, i0 + k * s, n);
        check_window(u, i0 - (k + 1) * s, n);
    }
    let p = u.as_ptr();
    let mut j = 0;
    while j + LANE <= n {
        let mut acc = _mm256_setzero_ps();
        for (k, &wk) in w.iter().enumerate() {
            let diff = _mm256_sub_ps(
                _mm256_loadu_ps(p.add(i0 + k * s + j)),
                _mm256_loadu_ps(p.add(i0 - (k + 1) * s + j)),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(wk), diff));
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
        j += LANE;
    }
    for jj in j..n {
        out[jj] = kernels::staggered_diff_bwd(u, i0 + jj, s, w);
    }
}
