//! Finite-difference weight generation (Fornberg's algorithm).
//!
//! B. Fornberg, *"Generation of finite difference formulas on arbitrarily
//! spaced grids"*, Math. Comp. 51 (1988). Given arbitrary nodes and an
//! evaluation point, the algorithm produces the weights of the
//! interpolating-polynomial derivative exactly (in f64), from which we
//! derive the centred and staggered stencils used by the propagators.

/// Weights for the `m`-th derivative at evaluation point `z` over `nodes`.
///
/// Returns `w` with `w[k]` multiplying `f(nodes[k])`; the approximation is
/// `f^(m)(z) ≈ Σ_k w[k]·f(nodes[k])`. Exact for polynomials of degree
/// `< nodes.len()`.
///
/// # Panics
/// If `nodes` has fewer than `m + 1` points or contains duplicates.
pub fn fornberg_weights(z: f64, nodes: &[f64], m: usize) -> Vec<f64> {
    let n = nodes.len();
    assert!(n > m, "need at least m+1 nodes for the m-th derivative");
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (nodes[i] - nodes[j]).abs() > 1e-14,
                "duplicate nodes in FD weight generation"
            );
        }
    }
    // c[j][k]: weight of node j for derivative order k, built incrementally.
    let mut c = vec![vec![0.0f64; m + 1]; n];
    let mut c1 = 1.0f64;
    let mut c4 = nodes[0] - z;
    c[0][0] = 1.0;
    for i in 1..n {
        let mn = i.min(m);
        let mut c2 = 1.0f64;
        let c5 = c4;
        c4 = nodes[i] - z;
        for j in 0..i {
            let c3 = nodes[i] - nodes[j];
            c2 *= c3;
            if j == i - 1 {
                for k in (1..=mn).rev() {
                    c[i][k] = c1 * (k as f64 * c[i - 1][k - 1] - c5 * c[i - 1][k]) / c2;
                }
                c[i][0] = -c1 * c5 * c[i - 1][0] / c2;
            }
            for k in (1..=mn).rev() {
                c[j][k] = (c4 * c[j][k] - k as f64 * c[j][k - 1]) / c3;
            }
            c[j][0] = c4 * c[j][0] / c3;
        }
        c1 = c2;
    }
    c.into_iter().map(|row| row[m]).collect()
}

/// Centred FD weights for the `deriv`-th derivative at accuracy `order`.
///
/// Nodes are the integer offsets `-r..=r` with `r = order / 2` (unit
/// spacing); divide by `h^deriv` for a physical grid. Returns `2r + 1`
/// weights indexed by `offset + r`.
///
/// # Panics
/// If `order` is zero or odd, or `deriv` is not 1 or 2.
pub fn central_coeffs(deriv: usize, order: usize) -> Vec<f64> {
    assert!(order >= 2 && order.is_multiple_of(2), "space order must be even ≥ 2");
    assert!(deriv == 1 || deriv == 2, "only first/second derivatives");
    let r = order / 2;
    let nodes: Vec<f64> = (-(r as i64)..=(r as i64)).map(|k| k as f64).collect();
    fornberg_weights(0.0, &nodes, deriv)
}

/// Half-weights of a centred stencil: `(center, w[1..=r])` exploiting
/// symmetry (second derivative) — `w[k]` multiplies `f(+k) + f(-k)`.
pub fn central_coeffs_symmetric(order: usize) -> (f64, Vec<f64>) {
    let full = central_coeffs(2, order);
    let r = order / 2;
    let center = full[r];
    let side: Vec<f64> = (1..=r).map(|k| full[r + k]).collect();
    // Sanity: a second-derivative stencil is symmetric.
    for (k, &w) in side.iter().enumerate() {
        debug_assert!((w - full[r - (k + 1)]).abs() < 1e-12);
    }
    (center, side)
}

/// Antisymmetric half-weights of the centred first derivative:
/// `w[k]` multiplies `f(+k) − f(-k)` for `k = 1..=r`.
pub fn central_first_antisymmetric(order: usize) -> Vec<f64> {
    let full = central_coeffs(1, order);
    let r = order / 2;
    (1..=r).map(|k| full[r + k]).collect()
}

/// Staggered first-derivative weights at accuracy `order`.
///
/// Evaluates `f'` at `0` from nodes at half-integer offsets
/// `±1/2, ±3/2, …, ±(r−1/2)` with `r = order / 2`. Returns the `r`
/// positive-side weights `w[k]` multiplying `f(+(k+1/2)) − f(−(k+1/2))`
/// (the stencil is antisymmetric). Order 2 gives `[1.0]`; order 4 gives
/// `[9/8, −1/24]`.
pub fn staggered_coeffs(order: usize) -> Vec<f64> {
    assert!(order >= 2 && order.is_multiple_of(2), "space order must be even ≥ 2");
    let r = order / 2;
    let mut nodes = Vec::with_capacity(2 * r);
    for k in 0..r {
        nodes.push(-(k as f64) - 0.5);
        nodes.push(k as f64 + 0.5);
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let full = fornberg_weights(0.0, &nodes, 1);
    // nodes[r + k] = +(k + 1/2)
    (0..r).map(|k| full[r + k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !≈ {b}");
    }

    #[test]
    fn order2_second_derivative_is_1_m2_1() {
        let w = central_coeffs(2, 2);
        assert_eq!(w.len(), 3);
        assert_close(w[0], 1.0, 1e-12);
        assert_close(w[1], -2.0, 1e-12);
        assert_close(w[2], 1.0, 1e-12);
    }

    #[test]
    fn order4_second_derivative_known_values() {
        let w = central_coeffs(2, 4);
        let expect = [-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0];
        for (a, b) in w.iter().zip(expect) {
            assert_close(*a, b, 1e-12);
        }
    }

    #[test]
    fn order8_second_derivative_center() {
        // Known center weight: -205/72.
        let w = central_coeffs(2, 8);
        assert_close(w[4], -205.0 / 72.0, 1e-12);
    }

    #[test]
    fn order2_first_derivative() {
        let w = central_coeffs(1, 2);
        assert_close(w[0], -0.5, 1e-12);
        assert_close(w[1], 0.0, 1e-12);
        assert_close(w[2], 0.5, 1e-12);
    }

    #[test]
    fn second_derivative_weights_sum_to_zero_all_orders() {
        for order in [2, 4, 6, 8, 10, 12, 16] {
            let w = central_coeffs(2, order);
            let s: f64 = w.iter().sum();
            assert!(s.abs() < 1e-10, "order {order}: sum {s}");
        }
    }

    #[test]
    fn second_derivative_symmetric_first_antisymmetric() {
        for order in [4, 8, 12] {
            let w2 = central_coeffs(2, order);
            let w1 = central_coeffs(1, order);
            let r = order / 2;
            for k in 1..=r {
                assert_close(w2[r + k], w2[r - k], 1e-12);
                assert_close(w1[r + k], -w1[r - k], 1e-12);
            }
            assert_close(w1[r], 0.0, 1e-12);
        }
    }

    /// FD weights must differentiate polynomials up to the stencil's design
    /// degree exactly.
    #[test]
    fn exactness_on_polynomials() {
        for order in [2, 4, 8, 12] {
            let r = (order / 2) as i64;
            let w2 = central_coeffs(2, order);
            let w1 = central_coeffs(1, order);
            // test at x0 = 0 on p(x) = x^d
            for d in 0..=(2 * r) as u32 {
                let d2: f64 = w2
                    .iter()
                    .zip(-r..=r)
                    .map(|(&w, k)| w * (k as f64).powi(d as i32))
                    .sum();
                let expect2 = if d == 2 { 2.0 } else { 0.0 };
                assert_close(d2, expect2, 1e-8);
                let d1: f64 = w1
                    .iter()
                    .zip(-r..=r)
                    .map(|(&w, k)| w * (k as f64).powi(d as i32))
                    .sum();
                let expect1 = if d == 1 { 1.0 } else { 0.0 };
                assert_close(d1, expect1, 1e-8);
            }
        }
    }

    #[test]
    fn staggered_order2_and_4_known_values() {
        let w2 = staggered_coeffs(2);
        assert_eq!(w2.len(), 1);
        assert_close(w2[0], 1.0, 1e-12);
        let w4 = staggered_coeffs(4);
        assert_close(w4[0], 9.0 / 8.0, 1e-12);
        assert_close(w4[1], -1.0 / 24.0, 1e-12);
    }

    #[test]
    fn staggered_exactness_on_odd_polynomials() {
        for order in [2, 4, 8, 12] {
            let r = order / 2;
            let w = staggered_coeffs(order);
            for d in 0..2 * r as u32 {
                let val: f64 = w
                    .iter()
                    .enumerate()
                    .map(|(k, &wk)| {
                        let xk = k as f64 + 0.5;
                        wk * (xk.powi(d as i32) - (-xk).powi(d as i32))
                    })
                    .sum();
                let expect = if d == 1 { 1.0 } else { 0.0 };
                assert_close(val, expect, 1e-8);
            }
        }
    }

    #[test]
    fn symmetric_helper_matches_full() {
        for order in [4, 8, 12] {
            let (c, side) = central_coeffs_symmetric(order);
            let full = central_coeffs(2, order);
            let r = order / 2;
            assert_close(c, full[r], 1e-14);
            for (k, &w) in side.iter().enumerate() {
                assert_close(w, full[r + k + 1], 1e-14);
            }
        }
    }

    #[test]
    fn antisymmetric_helper_matches_full() {
        let side = central_first_antisymmetric(8);
        let full = central_coeffs(1, 8);
        for (k, &w) in side.iter().enumerate() {
            assert_close(w, full[4 + k + 1], 1e-14);
        }
    }

    #[test]
    fn fornberg_arbitrary_nodes_interpolation_weights() {
        // m = 0 gives Lagrange interpolation weights: at a node they are a
        // Kronecker delta.
        let nodes = [-1.0, 0.5, 2.0, 3.7];
        let w = fornberg_weights(0.5, &nodes, 0);
        assert_close(w[0], 0.0, 1e-12);
        assert_close(w[1], 1.0, 1e-12);
        assert_close(w[2], 0.0, 1e-12);
        assert_close(w[3], 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_nodes() {
        let _ = fornberg_weights(0.0, &[0.0, 1.0, 1.0], 1);
    }

    #[test]
    #[should_panic(expected = "m+1 nodes")]
    fn rejects_too_few_nodes() {
        let _ = fornberg_weights(0.0, &[0.0, 1.0], 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_order() {
        let _ = central_coeffs(2, 3);
    }
}
