//! Stencil descriptors: explicit offset/weight lists.
//!
//! A [`StencilDescriptor`] is the fully expanded form of a stencil — every
//! `(Δx, Δy, Δz)` offset with its weight. The DSL lowering produces these,
//! the legality checker in `tempest-tiling` consumes their footprint, and
//! [`crate::metrics`] derives FLOP counts from them. The hand-optimised
//! kernels in [`crate::kernels`] are algebraically equal but exploit
//! symmetry; unit tests cross-check the two.

use crate::coeffs::central_coeffs;

/// An explicit space stencil: `out(p) = Σ_k weight[k] · u(p + offset[k])`.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilDescriptor {
    /// Grid offsets `(Δx, Δy, Δz)`.
    pub offsets: Vec<(i32, i32, i32)>,
    /// Weight per offset (premultiplied by spacing factors).
    pub weights: Vec<f32>,
}

impl StencilDescriptor {
    /// Build from parallel offset/weight lists.
    pub fn new(offsets: Vec<(i32, i32, i32)>, weights: Vec<f32>) -> Self {
        assert_eq!(offsets.len(), weights.len(), "offset/weight length mismatch");
        StencilDescriptor { offsets, weights }
    }

    /// The classic star-shaped 3-D Laplacian of the given space order
    /// (paper Fig. 2 shows the order-6, 19-point instance).
    pub fn laplacian3d(order: usize, spacing: [f32; 3]) -> Self {
        let w = central_coeffs(2, order);
        let r = (order / 2) as i32;
        let mut offsets = Vec::new();
        let mut weights = Vec::new();
        // Combined centre weight over the three axes.
        let mut center = 0.0f64;
        for (axis, &h) in spacing.iter().enumerate() {
            let inv_h2 = 1.0f64 / (h as f64 * h as f64);
            center += w[r as usize] * inv_h2;
            for k in 1..=r {
                let wk = (w[(r + k) as usize] * inv_h2) as f32;
                let mut off_p = (0, 0, 0);
                let mut off_m = (0, 0, 0);
                match axis {
                    0 => {
                        off_p.0 = k;
                        off_m.0 = -k;
                    }
                    1 => {
                        off_p.1 = k;
                        off_m.1 = -k;
                    }
                    _ => {
                        off_p.2 = k;
                        off_m.2 = -k;
                    }
                }
                offsets.push(off_p);
                weights.push(wk);
                offsets.push(off_m);
                weights.push(wk);
            }
        }
        offsets.push((0, 0, 0));
        weights.push(center as f32);
        StencilDescriptor { offsets, weights }
    }

    /// Number of points touched.
    pub fn num_points(&self) -> usize {
        self.offsets.len()
    }

    /// Maximum |offset| over all axes — the stencil radius that determines
    /// halo width and the wave-front skew slope (paper Fig. 7).
    pub fn radius(&self) -> usize {
        self.offsets
            .iter()
            .map(|&(a, b, c)| a.abs().max(b.abs()).max(c.abs()) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Per-axis maximum |offset| (staggered multi-field kernels have
    /// different reach per axis — Fig. 8b's shifted wavefront angle).
    pub fn radius_per_axis(&self) -> [usize; 3] {
        let mut r = [0usize; 3];
        for &(a, b, c) in &self.offsets {
            r[0] = r[0].max(a.unsigned_abs() as usize);
            r[1] = r[1].max(b.unsigned_abs() as usize);
            r[2] = r[2].max(c.unsigned_abs() as usize);
        }
        r
    }

    /// Multiply–add FLOP count for one application (2 per point: mul + add).
    pub fn flops(&self) -> usize {
        2 * self.offsets.len()
    }

    /// Evaluate the descriptor at `(x, y, z)` of a padded raw slice with the
    /// given strides (reference implementation — O(points), not vectorised).
    pub fn apply_at(&self, u: &[f32], i: usize, sx: usize, sy: usize) -> f32 {
        let mut acc = 0.0f32;
        for (&(dx, dy, dz), &w) in self.offsets.iter().zip(&self.weights) {
            let j = (i as isize
                + dx as isize * sx as isize
                + dy as isize * sy as isize
                + dz as isize) as usize;
            acc += w * u[j];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{laplacian_at, AxisWeights};

    #[test]
    fn laplacian_point_counts() {
        // order-2: 7-point star; order-6: 19-point (Fig. 2); order-8: 25.
        assert_eq!(
            StencilDescriptor::laplacian3d(2, [1.0; 3]).num_points(),
            7
        );
        assert_eq!(
            StencilDescriptor::laplacian3d(6, [1.0; 3]).num_points(),
            19
        );
        assert_eq!(
            StencilDescriptor::laplacian3d(8, [1.0; 3]).num_points(),
            25
        );
    }

    #[test]
    fn radius_matches_half_order() {
        for order in [2, 4, 8, 12] {
            let d = StencilDescriptor::laplacian3d(order, [1.0; 3]);
            assert_eq!(d.radius(), order / 2);
            assert_eq!(d.radius_per_axis(), [order / 2; 3]);
        }
    }

    #[test]
    fn descriptor_agrees_with_fast_kernel() {
        let (nx, ny, nz) = (11, 11, 11);
        let (sx, sy) = (ny * nz, nz);
        let h = [2.0f32, 1.0, 0.5];
        let mut u = vec![0.0f32; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    u[(x * ny + y) * nz + z] =
                        ((x * 3 + y * 7 + z * 11) % 17) as f32 * 0.25 - 1.0;
                }
            }
        }
        let order = 8;
        let d = StencilDescriptor::laplacian3d(order, h);
        let wx = AxisWeights::second_derivative(order, h[0]);
        let wy = AxisWeights::second_derivative(order, h[1]);
        let wz = AxisWeights::second_derivative(order, h[2]);
        let center = wx.center + wy.center + wz.center;
        let i = (5 * ny + 5) * nz + 5;
        let a = d.apply_at(&u, i, sx, sy);
        let b = laplacian_at(&u, i, sx, sy, center, &wx.side, &wy.side, &wz.side);
        assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn flops_is_two_per_point() {
        let d = StencilDescriptor::laplacian3d(4, [1.0; 3]);
        assert_eq!(d.flops(), 2 * 13);
    }

    #[test]
    fn anisotropic_spacing_scales_axis_weights() {
        let d = StencilDescriptor::laplacian3d(2, [1.0, 1.0, 0.5]);
        // weight of (0,0,±1) should be 4x the weight of (±1,0,0)
        let wz = d
            .offsets
            .iter()
            .zip(&d.weights)
            .find(|(&o, _)| o == (0, 0, 1))
            .unwrap()
            .1;
        let wx = d
            .offsets
            .iter()
            .zip(&d.weights)
            .find(|(&o, _)| o == (1, 0, 0))
            .unwrap()
            .1;
        assert!((wz / wx - 4.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = StencilDescriptor::new(vec![(0, 0, 0)], vec![1.0, 2.0]);
    }
}
