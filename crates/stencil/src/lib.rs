//! # tempest-stencil
//!
//! Finite-difference machinery: coefficient generation, stencil descriptors
//! and the dense point-update kernels used by the wave propagators.
//!
//! The paper's kernels are explicit finite-difference discretisations of
//! space orders 4, 8 and 12 (§IV.B). This crate computes the FD weights for
//! *any* even order with Fornberg's algorithm ([`coeffs`]), describes the
//! resulting space stencils ([`descriptor`]) including their FLOP/byte
//! footprint ([`metrics`], used by the roofline reproduction of Fig. 11), and
//! provides the inner-loop building blocks ([`kernels`]) that the propagators
//! in `tempest-core` assemble into full time updates:
//!
//! * second-derivative / Laplacian contributions (isotropic acoustic, Fig. 2),
//! * centred first derivatives (the rotated TTI Laplacian, Eq. 2),
//! * staggered first derivatives (elastic velocity–stress, Eq. 3).
//!
//! All kernels operate on raw slices with precomputed strides so the `z`
//! loop vectorises; weights are premultiplied by the `1/hᵏ` grid-spacing
//! factors at construction time, keeping the hot loop multiply–add only.
//!
//! Three interchangeable row-granularity implementations of these kernels —
//! per-point [`backend::Scalar`], autovectorizer-shaped [`backend::Portable`]
//! ([`simd`]) and explicit-intrinsics [`backend::Avx2`] ([`avx2`]) — sit
//! behind the [`backend::KernelBackend`] trait, selected at runtime by the
//! [`backend`] dispatcher (CPU feature detection, `TEMPEST_KERNEL`
//! override). All are bitwise-identical by contract.

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod backend;
pub mod coeffs;
pub mod descriptor;
pub mod kernels;
pub mod metrics;
pub mod simd;

pub use backend::{Backend, BackendCaps, KernelBackend};
pub use coeffs::{central_coeffs, fornberg_weights, staggered_coeffs};
pub use descriptor::StencilDescriptor;
pub use kernels::AxisWeights;
pub use simd::{Lane, LANE};
