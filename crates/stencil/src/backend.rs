//! Kernel backends and the runtime SIMD dispatcher.
//!
//! Every dense stencil update in the workspace flows through one of three
//! interchangeable row-granularity backends:
//!
//! * [`Scalar`] — a per-point loop over the [`crate::kernels`] building
//!   blocks. The reference semantics: every other backend must reproduce its
//!   output bit-for-bit.
//! * [`Portable`] — the autovectorizer-shaped pencil kernels of
//!   [`crate::simd`]: offset windows hoisted and bounds-checked once per
//!   row, then plain loops LLVM vectorizes to [`crate::simd::LANE`]-wide
//!   ops on any target.
//! * [`Avx2`] — explicit `std::arch::x86_64` intrinsics ([`crate::avx2`]):
//!   unaligned 256-bit loads over the same hoisted windows, multiply then
//!   add with no FMA contraction. Only available where
//!   `is_x86_feature_detected!("avx2")` holds.
//!
//! All three implement [`KernelBackend`] (row update per supported kernel
//! shape plus [`BackendCaps`] capability metadata); the [`Backend`] enum is
//! the runtime-selectable handle the propagators dispatch through. The
//! bitwise-equivalence contract is the oracle: for identical inputs, every
//! backend's row output has `to_bits()`-identical elements (asserted by the
//! tests below and by the workspace-level `kernel_backends` suite), so
//! backends — like schedules — are interchangeable without changing a
//! single output bit.
//!
//! # Dispatch order and override precedence
//!
//! [`default_backend`] resolves once per process (cached in a [`OnceLock`])
//! to the best backend the host supports: `Avx2` where detected, else
//! `Portable`. Overrides, strongest first:
//!
//! 1. an explicit `--kernel` flag (an `Execution` carrying a concrete
//!    `KernelPath`, resolved by `tempest-core`),
//! 2. the [`TEMPEST_KERNEL`](KERNEL_ENV) environment variable
//!    (`scalar` | `portable` | `avx2`; `pencil` is an alias for `portable`,
//!    `auto` for detection),
//! 3. the detected best ([`detect_best`]).
//!
//! A forced backend that the host cannot run (e.g. `TEMPEST_KERNEL=avx2` on
//! a non-AVX2 machine) falls back cleanly to [`detect_best`] with a one-time
//! warning on stderr — never UB, never a crash. This is the seam future
//! backends (AVX-512, NEON, GPU offload) plug into: implement
//! [`KernelBackend`], add a [`Backend`] variant, extend [`detect_best`].

use std::sync::OnceLock;

use crate::kernels::{self, AxisWeights};
use crate::simd;

/// Capability metadata for one kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Stable lowercase name (`scalar`, `portable`, `avx2`) — used by
    /// `--kernel`, `TEMPEST_KERNEL`, report columns and obs labels.
    pub name: &'static str,
    /// f32 elements per vector step (1 = per-point).
    pub lanes: usize,
    /// CPU feature the backend needs at runtime; `None` runs anywhere.
    pub cpu_feature: Option<&'static str>,
}

/// Whether the current host supports a named CPU feature.
fn host_has_feature(feature: &str) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match feature {
            "avx2" => std::arch::is_x86_feature_detected!("avx2"),
            _ => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = feature;
        false
    }
}

/// One interchangeable dense-kernel implementation: a row update for each
/// supported kernel shape (`out[j]` receives the stencil value at linear
/// index `i0 + j`) plus capability metadata. Radius is a const generic on
/// the `_r` methods (monomorphised per space order by the propagators) with
/// dynamic-radius fallbacks; implementations must be bitwise-identical to
/// [`Scalar`] for every method.
pub trait KernelBackend {
    /// Capability metadata.
    fn caps(&self) -> BackendCaps;

    /// Whether this backend can run on the current host.
    fn available(&self) -> bool {
        self.caps().cpu_feature.is_none_or(host_has_feature)
    }

    /// 3-D Laplacian row, compile-time radius.
    #[allow(clippy::too_many_arguments)]
    fn laplacian_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32; R],
        wy: &[f32; R],
        wz: &[f32; R],
        out: &mut [f32],
    );

    /// 3-D Laplacian row, dynamic radius.
    #[allow(clippy::too_many_arguments)]
    fn laplacian_row(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32],
        wy: &[f32],
        wz: &[f32],
        out: &mut [f32],
    );

    /// Second derivative along one axis, compile-time radius.
    fn second_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        center: f32,
        side: &[f32; R],
        out: &mut [f32],
    );

    /// Second derivative along one axis, dynamic radius.
    fn second_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]);

    /// Centred first derivative, dynamic radius.
    fn first_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]);

    /// Mixed second derivative `∂²/∂a∂b`, compile-time radius.
    #[allow(clippy::too_many_arguments)]
    fn cross_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s1: usize,
        s2: usize,
        w1: &[f32; R],
        w2: &[f32; R],
        out: &mut [f32],
    );

    /// Staggered forward derivative (at `i + ½`), compile-time radius.
    fn staggered_fwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    );

    /// Staggered backward derivative (at `i − ½`), compile-time radius.
    fn staggered_bwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    );

    /// Staggered forward derivative, dynamic radius.
    fn staggered_fwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]);

    /// Staggered backward derivative, dynamic radius.
    fn staggered_bwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]);
}

/// Reference backend: per-point loops over [`crate::kernels`]. Defines the
/// floating-point semantics every other backend must match bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scalar;

impl KernelBackend for Scalar {
    fn caps(&self) -> BackendCaps {
        BackendCaps { name: "scalar", lanes: 1, cpu_feature: None }
    }

    fn laplacian_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32; R],
        wy: &[f32; R],
        wz: &[f32; R],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::laplacian_at_r::<R>(u, i0 + j, sx, sy, center, wx, wy, wz);
        }
    }

    fn laplacian_row(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32],
        wy: &[f32],
        wz: &[f32],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::laplacian_at(u, i0 + j, sx, sy, center, wx, wy, wz);
        }
    }

    fn second_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        center: f32,
        side: &[f32; R],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::second_diff_axis_r::<R>(u, i0 + j, s, center, side);
        }
    }

    fn second_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::second_diff_axis(u, i0 + j, s, w);
        }
    }

    fn first_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::first_diff_axis(u, i0 + j, s, w);
        }
    }

    fn cross_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s1: usize,
        s2: usize,
        w1: &[f32; R],
        w2: &[f32; R],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::cross_diff_r::<R>(u, i0 + j, s1, s2, w1, w2);
        }
    }

    fn staggered_fwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::staggered_diff_fwd_r::<R>(u, i0 + j, s, w);
        }
    }

    fn staggered_bwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::staggered_diff_bwd_r::<R>(u, i0 + j, s, w);
        }
    }

    fn staggered_fwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::staggered_diff_fwd(u, i0 + j, s, w);
        }
    }

    fn staggered_bwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = kernels::staggered_diff_bwd(u, i0 + j, s, w);
        }
    }
}

/// Autovectorizer-shaped backend: the pencil kernels of [`crate::simd`].
/// Runs on any target; LLVM's loop vectorizer supplies the SIMD.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Portable;

impl KernelBackend for Portable {
    fn caps(&self) -> BackendCaps {
        BackendCaps { name: "portable", lanes: simd::LANE, cpu_feature: None }
    }

    fn laplacian_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32; R],
        wy: &[f32; R],
        wz: &[f32; R],
        out: &mut [f32],
    ) {
        simd::laplacian_pencil_r::<R>(u, i0, sx, sy, center, wx, wy, wz, out);
    }

    fn laplacian_row(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32],
        wy: &[f32],
        wz: &[f32],
        out: &mut [f32],
    ) {
        simd::laplacian_pencil(u, i0, sx, sy, center, wx, wy, wz, out);
    }

    fn second_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        center: f32,
        side: &[f32; R],
        out: &mut [f32],
    ) {
        simd::second_diff_pencil_r::<R>(u, i0, s, center, side, out);
    }

    fn second_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
        simd::second_diff_pencil(u, i0, s, w, out);
    }

    fn first_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        simd::first_diff_pencil(u, i0, s, w, out);
    }

    fn cross_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s1: usize,
        s2: usize,
        w1: &[f32; R],
        w2: &[f32; R],
        out: &mut [f32],
    ) {
        simd::cross_diff_pencil_r::<R>(u, i0, s1, s2, w1, w2, out);
    }

    fn staggered_fwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        simd::staggered_pencil_fwd_r::<R>(u, i0, s, w, out);
    }

    fn staggered_bwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        simd::staggered_pencil_bwd_r::<R>(u, i0, s, w, out);
    }

    fn staggered_fwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        simd::staggered_pencil_fwd(u, i0, s, w, out);
    }

    fn staggered_bwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        simd::staggered_pencil_bwd(u, i0, s, w, out);
    }
}

/// Explicit 256-bit intrinsics backend ([`crate::avx2`]). Every method
/// asserts AVX2 availability before entering the `target_feature` region,
/// so a mis-forced selection panics with a clear message instead of
/// executing illegal instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Avx2;

#[cfg(target_arch = "x86_64")]
fn assert_avx2() {
    assert!(
        std::arch::is_x86_feature_detected!("avx2"),
        "avx2 kernel backend selected but the CPU does not support AVX2 \
         (use Backend::available() / the dispatcher to pick a runnable backend)"
    );
}

#[cfg(not(target_arch = "x86_64"))]
fn no_avx2() -> ! {
    panic!("avx2 kernel backend is only available on x86_64")
}

impl KernelBackend for Avx2 {
    fn caps(&self) -> BackendCaps {
        BackendCaps { name: "avx2", lanes: 8, cpu_feature: Some("avx2") }
    }

    fn laplacian_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32; R],
        wy: &[f32; R],
        wz: &[f32; R],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::laplacian_row_r::<R>(u, i0, sx, sy, center, wx, wy, wz, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, sx, sy, center, wx, wy, wz, out);
            no_avx2()
        }
    }

    fn laplacian_row(
        &self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32],
        wy: &[f32],
        wz: &[f32],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::laplacian_row(u, i0, sx, sy, center, wx, wy, wz, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, sx, sy, center, wx, wy, wz, out);
            no_avx2()
        }
    }

    fn second_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        center: f32,
        side: &[f32; R],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::second_diff_row_r::<R>(u, i0, s, center, side, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, center, side, out);
            no_avx2()
        }
    }

    fn second_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::second_diff_row(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }

    fn first_diff_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::first_diff_row(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }

    fn cross_diff_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s1: usize,
        s2: usize,
        w1: &[f32; R],
        w2: &[f32; R],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::cross_diff_row_r::<R>(u, i0, s1, s2, w1, w2, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s1, s2, w1, w2, out);
            no_avx2()
        }
    }

    fn staggered_fwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::staggered_fwd_row_r::<R>(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }

    fn staggered_bwd_row_r<const R: usize>(
        &self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::staggered_bwd_row_r::<R>(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }

    fn staggered_fwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::staggered_fwd_row(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }

    fn staggered_bwd_row(&self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        {
            assert_avx2();
            // SAFETY: AVX2 support was just asserted.
            unsafe { crate::avx2::staggered_bwd_row(u, i0, s, w, out) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (u, i0, s, w, out);
            no_avx2()
        }
    }
}

/// Runtime-selectable handle over the three [`KernelBackend`]
/// implementations. The trait's const-generic radius methods make it
/// non-object-safe, so propagators hold this `Copy` enum and dispatch by
/// match; each arm is a direct (inlineable) call into the chosen backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// Per-point reference kernels.
    Scalar,
    /// Autovectorizer-shaped pencil kernels (runs anywhere).
    Portable,
    /// Explicit AVX2 intrinsics (x86_64 with AVX2 only).
    Avx2,
}

/// Dispatch one trait method through the enum.
macro_rules! dispatch {
    ($self:ident, $method:ident $(::<$R:ident>)? ( $($arg:expr),* )) => {
        match $self {
            Backend::Scalar => Scalar.$method$(::<$R>)?($($arg),*),
            Backend::Portable => Portable.$method$(::<$R>)?($($arg),*),
            Backend::Avx2 => Avx2.$method$(::<$R>)?($($arg),*),
        }
    };
}

impl Backend {
    /// Every backend, in preference order (best last).
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Portable, Backend::Avx2];

    /// Stable lowercase name (matches `--kernel` / `TEMPEST_KERNEL` values).
    pub fn name(self) -> &'static str {
        self.caps().name
    }

    /// Capability metadata of the selected backend.
    pub fn caps(self) -> BackendCaps {
        match self {
            Backend::Scalar => Scalar.caps(),
            Backend::Portable => Portable.caps(),
            Backend::Avx2 => Avx2.caps(),
        }
    }

    /// Whether the selected backend can run on this host.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => Scalar.available(),
            Backend::Portable => Portable.available(),
            Backend::Avx2 => Avx2.available(),
        }
    }

    /// Parse a backend name (case-insensitive). `pencil` is accepted as a
    /// compatibility alias for `portable`; `auto` is *not* a backend — the
    /// dispatcher handles it.
    pub fn parse(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "portable" | "pencil" => Some(Backend::Portable),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// 3-D Laplacian row, compile-time radius.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn laplacian_row_r<const R: usize>(
        self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32; R],
        wy: &[f32; R],
        wz: &[f32; R],
        out: &mut [f32],
    ) {
        dispatch!(self, laplacian_row_r::<R>(u, i0, sx, sy, center, wx, wy, wz, out))
    }

    /// 3-D Laplacian row, dynamic radius.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn laplacian_row(
        self,
        u: &[f32],
        i0: usize,
        sx: usize,
        sy: usize,
        center: f32,
        wx: &[f32],
        wy: &[f32],
        wz: &[f32],
        out: &mut [f32],
    ) {
        dispatch!(self, laplacian_row(u, i0, sx, sy, center, wx, wy, wz, out))
    }

    /// Second derivative along one axis, compile-time radius.
    #[inline]
    pub fn second_diff_row_r<const R: usize>(
        self,
        u: &[f32],
        i0: usize,
        s: usize,
        center: f32,
        side: &[f32; R],
        out: &mut [f32],
    ) {
        dispatch!(self, second_diff_row_r::<R>(u, i0, s, center, side, out))
    }

    /// Second derivative along one axis, dynamic radius.
    #[inline]
    pub fn second_diff_row(self, u: &[f32], i0: usize, s: usize, w: &AxisWeights, out: &mut [f32]) {
        dispatch!(self, second_diff_row(u, i0, s, w, out))
    }

    /// Centred first derivative, dynamic radius.
    #[inline]
    pub fn first_diff_row(self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        dispatch!(self, first_diff_row(u, i0, s, w, out))
    }

    /// Mixed second derivative `∂²/∂a∂b`, compile-time radius.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn cross_diff_row_r<const R: usize>(
        self,
        u: &[f32],
        i0: usize,
        s1: usize,
        s2: usize,
        w1: &[f32; R],
        w2: &[f32; R],
        out: &mut [f32],
    ) {
        dispatch!(self, cross_diff_row_r::<R>(u, i0, s1, s2, w1, w2, out))
    }

    /// Staggered forward derivative, compile-time radius.
    #[inline]
    pub fn staggered_fwd_row_r<const R: usize>(
        self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        dispatch!(self, staggered_fwd_row_r::<R>(u, i0, s, w, out))
    }

    /// Staggered backward derivative, compile-time radius.
    #[inline]
    pub fn staggered_bwd_row_r<const R: usize>(
        self,
        u: &[f32],
        i0: usize,
        s: usize,
        w: &[f32; R],
        out: &mut [f32],
    ) {
        dispatch!(self, staggered_bwd_row_r::<R>(u, i0, s, w, out))
    }

    /// Staggered forward derivative, dynamic radius.
    #[inline]
    pub fn staggered_fwd_row(self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        dispatch!(self, staggered_fwd_row(u, i0, s, w, out))
    }

    /// Staggered backward derivative, dynamic radius.
    #[inline]
    pub fn staggered_bwd_row(self, u: &[f32], i0: usize, s: usize, w: &[f32], out: &mut [f32]) {
        dispatch!(self, staggered_bwd_row(u, i0, s, w, out))
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Name of the environment variable the dispatcher honours.
pub const KERNEL_ENV: &str = "TEMPEST_KERNEL";

/// The best backend the current host supports: `Avx2` where detected,
/// `Portable` everywhere else. `Scalar` is never auto-selected — it exists
/// as the reference semantics and for explicit ablation.
pub fn detect_best() -> Backend {
    if Backend::Avx2.available() {
        Backend::Avx2
    } else {
        Backend::Portable
    }
}

/// Pure dispatch decision: resolve an optional override string (the value
/// of [`KERNEL_ENV`], or `None` when unset) to a runnable backend.
///
/// `auto`, an empty value, an unknown name, or a backend the host cannot
/// run all fall back cleanly to [`detect_best`]; a known, available backend
/// is honoured. Kept free of environment access so tests can cover every
/// case without process-global races.
pub fn choose(request: Option<&str>) -> Backend {
    match request.map(str::trim).filter(|s| !s.is_empty()) {
        None => detect_best(),
        Some(s) if s.eq_ignore_ascii_case("auto") => detect_best(),
        Some(s) => match Backend::parse(s) {
            Some(b) if b.available() => b,
            _ => detect_best(),
        },
    }
}

/// The process-wide default backend: [`choose`] applied to
/// [`KERNEL_ENV`], resolved once and cached in a [`OnceLock`] (later
/// environment changes are ignored). Logs a one-time stderr warning when a
/// forced value could not be honoured.
pub fn default_backend() -> Backend {
    static CHOICE: OnceLock<Backend> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let env = std::env::var(KERNEL_ENV).ok();
        let request = env.as_deref().map(str::trim).filter(|s| !s.is_empty());
        let picked = choose(request);
        if let Some(s) = request {
            if !s.eq_ignore_ascii_case("auto") {
                match Backend::parse(s) {
                    Some(req) if req.available() => {}
                    Some(req) => eprintln!(
                        "tempest: {KERNEL_ENV}={} is not available on this host; using {}",
                        req.name(),
                        picked.name()
                    ),
                    None => eprintln!(
                        "tempest: unknown {KERNEL_ENV} value {s:?}; using {}",
                        picked.name()
                    ),
                }
            }
        }
        picked
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{first_derivative_weights, staggered_weights};
    use tempest_grid::Rng64;

    fn volume(seed: u64, nx: usize, ny: usize, nz: usize) -> (Vec<f32>, usize, usize) {
        let mut rng = Rng64::new(seed);
        let u: Vec<f32> = (0..nx * ny * nz)
            .map(|_| rng.next_f32() * 2.0 - 1.0)
            .collect();
        (u, ny * nz, nz)
    }

    /// Unaligned bases, sub-lane rows, lane + tail — the same coverage the
    /// simd suite uses.
    fn row_cases(nz: usize, r: usize) -> Vec<(usize, usize)> {
        let mut cases = vec![
            (r, nz - 2 * r),
            (r + 1, nz - 2 * r - 1),
            (r + 3, 5),
            (r, simd::LANE),
            (r + 2, simd::LANE + 3),
            (r, 0),
        ];
        cases.retain(|&(z0, n)| z0 + n + r <= nz);
        cases
    }

    /// Backends under test on this host: always Scalar + Portable, plus
    /// Avx2 where the CPU supports it.
    fn testable() -> Vec<Backend> {
        Backend::ALL.into_iter().filter(|b| b.available()).collect()
    }

    #[test]
    fn caps_are_consistent() {
        assert_eq!(Backend::Scalar.caps().lanes, 1);
        assert_eq!(Backend::Portable.caps().lanes, simd::LANE);
        assert_eq!(Backend::Avx2.caps().cpu_feature, Some("avx2"));
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert!(Backend::Scalar.available());
        assert!(Backend::Portable.available());
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_unknown() {
        assert_eq!(Backend::parse("pencil"), Some(Backend::Portable));
        assert_eq!(Backend::parse("  AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::parse("auto"), None);
        assert_eq!(Backend::parse("neon"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn detect_best_is_available_and_vectorized() {
        let b = detect_best();
        assert!(b.available());
        assert!(b.caps().lanes > 1, "auto-selected backend must be vectorized");
    }

    #[test]
    fn choose_honours_requests_and_falls_back_cleanly() {
        // No request / auto / empty → detected best.
        assert_eq!(choose(None), detect_best());
        assert_eq!(choose(Some("auto")), detect_best());
        assert_eq!(choose(Some("  ")), detect_best());
        // Always-available backends are honoured verbatim.
        assert_eq!(choose(Some("scalar")), Backend::Scalar);
        assert_eq!(choose(Some("portable")), Backend::Portable);
        assert_eq!(choose(Some("pencil")), Backend::Portable);
        // Unknown names never panic, never pick an unrunnable backend.
        assert_eq!(choose(Some("gpu9000")), detect_best());
        // A forced avx2 is honoured exactly when the host supports it.
        let forced = choose(Some("avx2"));
        if Backend::Avx2.available() {
            assert_eq!(forced, Backend::Avx2);
        } else {
            assert_eq!(forced, detect_best());
        }
        assert!(forced.available());
    }

    #[test]
    fn default_backend_is_runnable() {
        assert!(default_backend().available());
    }

    #[test]
    fn all_backends_match_scalar_bitwise_on_every_row_shape() {
        let (nx, ny, nz) = (22, 21, 41);
        let (u, sx, sy) = volume(29, nx, ny, nz);
        for order in [4usize, 8, 12] {
            let r = order / 2;
            let w2 = AxisWeights::second_derivative(order, 3.0);
            let center = 3.0 * w2.center;
            let w1 = first_derivative_weights(order, 1.5);
            let ws = staggered_weights(order, 5.0);
            for &(z0, n) in &row_cases(nz, r) {
                let i0 = (r * ny + r) * nz + z0;
                for b in testable() {
                    macro_rules! per_radius {
                        ($R:literal) => {{
                            let side: [f32; $R] = w2.side_array();
                            let w1a: [f32; $R] = w1.clone().try_into().unwrap();
                            let wsa: [f32; $R] = ws.clone().try_into().unwrap();
                            let mut got = vec![0.0f32; n];
                            let mut want = vec![0.0f32; n];
                            b.laplacian_row_r::<$R>(
                                &u, i0, sx, sy, center, &side, &side, &side, &mut got,
                            );
                            Scalar.laplacian_row_r::<$R>(
                                &u, i0, sx, sy, center, &side, &side, &side, &mut want,
                            );
                            assert_bits(&got, &want, b, "laplacian_row_r", order);
                            b.second_diff_row_r::<$R>(&u, i0, sy, w2.center, &side, &mut got);
                            Scalar.second_diff_row_r::<$R>(
                                &u, i0, sy, w2.center, &side, &mut want,
                            );
                            assert_bits(&got, &want, b, "second_diff_row_r", order);
                            b.cross_diff_row_r::<$R>(&u, i0, sx, 1, &w1a, &w1a, &mut got);
                            Scalar.cross_diff_row_r::<$R>(&u, i0, sx, 1, &w1a, &w1a, &mut want);
                            assert_bits(&got, &want, b, "cross_diff_row_r", order);
                            b.staggered_fwd_row_r::<$R>(&u, i0, sy, &wsa, &mut got);
                            Scalar.staggered_fwd_row_r::<$R>(&u, i0, sy, &wsa, &mut want);
                            assert_bits(&got, &want, b, "staggered_fwd_row_r", order);
                            b.staggered_bwd_row_r::<$R>(&u, i0, sy, &wsa, &mut got);
                            Scalar.staggered_bwd_row_r::<$R>(&u, i0, sy, &wsa, &mut want);
                            assert_bits(&got, &want, b, "staggered_bwd_row_r", order);
                        }};
                    }
                    match r {
                        2 => per_radius!(2),
                        4 => per_radius!(4),
                        6 => per_radius!(6),
                        _ => unreachable!(),
                    }
                    // Dynamic-radius methods.
                    let mut got = vec![0.0f32; n];
                    let mut want = vec![0.0f32; n];
                    b.laplacian_row(&u, i0, sx, sy, center, &w2.side, &w2.side, &w2.side, &mut got);
                    Scalar.laplacian_row(
                        &u, i0, sx, sy, center, &w2.side, &w2.side, &w2.side, &mut want,
                    );
                    assert_bits(&got, &want, b, "laplacian_row", order);
                    b.second_diff_row(&u, i0, sx, &w2, &mut got);
                    Scalar.second_diff_row(&u, i0, sx, &w2, &mut want);
                    assert_bits(&got, &want, b, "second_diff_row", order);
                    b.first_diff_row(&u, i0, sy, &w1, &mut got);
                    Scalar.first_diff_row(&u, i0, sy, &w1, &mut want);
                    assert_bits(&got, &want, b, "first_diff_row", order);
                    b.staggered_fwd_row(&u, i0, 1, &ws, &mut got);
                    Scalar.staggered_fwd_row(&u, i0, 1, &ws, &mut want);
                    assert_bits(&got, &want, b, "staggered_fwd_row", order);
                    b.staggered_bwd_row(&u, i0, 1, &ws, &mut got);
                    Scalar.staggered_bwd_row(&u, i0, 1, &ws, &mut want);
                    assert_bits(&got, &want, b, "staggered_bwd_row", order);
                }
            }
        }
    }

    fn assert_bits(got: &[f32], want: &[f32], b: Backend, kernel: &str, order: usize) {
        for (j, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{b} diverges from scalar: {kernel} order {order} j {j}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn avx2_rows_keep_scalar_panic_semantics() {
        // Out-of-bounds row: whichever backend runs, the row-level window
        // check must fire like the scalar kernel's indexing would.
        let u = vec![0.0f32; 64];
        let mut out = vec![0.0f32; 8];
        let b = if Backend::Avx2.available() { Backend::Avx2 } else { Backend::Portable };
        b.laplacian_row(&u, 60, 16, 4, 1.0, &[0.5], &[0.5], &[0.5], &mut out);
    }
}
