//! Inner-loop finite-difference building blocks.
//!
//! Each function computes one derivative contribution at a single linear
//! index `i` of a padded field's raw slice, given the axis stride. The `z`
//! axis has stride 1, so a caller looping `z` over a contiguous pencil gets
//! unit-stride accesses that LLVM auto-vectorises — this is the "SIMD
//! vectorization over the z loop" of the paper's Listing 4.
//!
//! Weights are *premultiplied* by the `1/hᵏ` spacing factors (see
//! [`AxisWeights`]), keeping the hot path free of divisions.
//!
//! Const-generic `_r` variants take the radius as a compile-time constant so
//! the weight loop fully unrolls; the propagators in `tempest-core`
//! monomorphise them for the paper's space orders 4, 8 and 12 (radii 2, 4, 6).

use crate::coeffs::{central_coeffs_symmetric, central_first_antisymmetric, staggered_coeffs};

/// Premultiplied second-derivative weights along one axis.
///
/// `value = center·u[i] + Σ_k side[k−1]·(u[i+k·s] + u[i−k·s])`, already
/// scaled by `1/h²`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisWeights {
    /// Centre-point weight (scaled by `1/h²`).
    pub center: f32,
    /// Symmetric side weights; `side[k-1]` multiplies `u(+k) + u(−k)`.
    pub side: Vec<f32>,
}

impl AxisWeights {
    /// Second-derivative weights of the given (even) space order for grid
    /// spacing `h`.
    pub fn second_derivative(order: usize, h: f32) -> Self {
        let (c, side) = central_coeffs_symmetric(order);
        let inv_h2 = 1.0 / (h as f64 * h as f64);
        AxisWeights {
            center: (c * inv_h2) as f32,
            side: side.iter().map(|&w| (w * inv_h2) as f32).collect(),
        }
    }

    /// Stencil radius along this axis.
    pub fn radius(&self) -> usize {
        self.side.len()
    }

    /// Side weights as a fixed-size array (for the const-generic kernels).
    ///
    /// # Panics
    /// If `R` does not equal the runtime radius.
    pub fn side_array<const R: usize>(&self) -> [f32; R] {
        assert_eq!(self.side.len(), R, "radius mismatch");
        let mut a = [0.0f32; R];
        a.copy_from_slice(&self.side);
        a
    }
}

/// Premultiplied antisymmetric first-derivative weights along one axis:
/// `value = Σ_k w[k−1]·(u[i+k·s] − u[i−k·s])`, scaled by `1/h`.
pub fn first_derivative_weights(order: usize, h: f32) -> Vec<f32> {
    central_first_antisymmetric(order)
        .iter()
        .map(|&w| (w / h as f64) as f32)
        .collect()
}

/// Premultiplied staggered first-derivative weights:
/// forward `value = Σ_k w[k]·(u[i+(k+1)·s] − u[i−k·s])` evaluates the
/// derivative at `i + ½`, scaled by `1/h`.
pub fn staggered_weights(order: usize, h: f32) -> Vec<f32> {
    staggered_coeffs(order)
        .iter()
        .map(|&w| (w / h as f64) as f32)
        .collect()
}

/// Second derivative along one axis at linear index `i` with stride `s`.
#[inline(always)]
pub fn second_diff_axis(u: &[f32], i: usize, s: usize, w: &AxisWeights) -> f32 {
    let mut acc = w.center * u[i];
    for (k, &wk) in w.side.iter().enumerate() {
        let o = (k + 1) * s;
        acc += wk * (u[i + o] + u[i - o]);
    }
    acc
}

/// Second derivative along one axis, compile-time radius (`center` is the
/// axis centre weight; `side[k]` multiplies `u(+k+1) + u(−k−1)`).
#[inline(always)]
pub fn second_diff_axis_r<const R: usize>(
    u: &[f32],
    i: usize,
    s: usize,
    center: f32,
    side: &[f32; R],
) -> f32 {
    let mut acc = center * u[i];
    let mut k = 0;
    while k < R {
        let o = (k + 1) * s;
        acc += side[k] * (u[i + o] + u[i - o]);
        k += 1;
    }
    acc
}

/// 3-D Laplacian at linear index `i` (strides `sx`, `sy`, `sz = 1`).
///
/// `center` must be the *combined* centre weight `cx + cy + cz`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn laplacian_at(
    u: &[f32],
    i: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32],
    wy: &[f32],
    wz: &[f32],
) -> f32 {
    let mut acc = center * u[i];
    for (k, &w) in wx.iter().enumerate() {
        let o = (k + 1) * sx;
        acc += w * (u[i + o] + u[i - o]);
    }
    for (k, &w) in wy.iter().enumerate() {
        let o = (k + 1) * sy;
        acc += w * (u[i + o] + u[i - o]);
    }
    for (k, &w) in wz.iter().enumerate() {
        let o = k + 1;
        acc += w * (u[i + o] + u[i - o]);
    }
    acc
}

/// 3-D Laplacian with compile-time radius `R` (fully unrolled weight loops).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn laplacian_at_r<const R: usize>(
    u: &[f32],
    i: usize,
    sx: usize,
    sy: usize,
    center: f32,
    wx: &[f32; R],
    wy: &[f32; R],
    wz: &[f32; R],
) -> f32 {
    let mut acc = center * u[i];
    let mut k = 0;
    while k < R {
        let o = (k + 1) * sx;
        acc += wx[k] * (u[i + o] + u[i - o]);
        k += 1;
    }
    k = 0;
    while k < R {
        let o = (k + 1) * sy;
        acc += wy[k] * (u[i + o] + u[i - o]);
        k += 1;
    }
    k = 0;
    while k < R {
        let o = k + 1;
        acc += wz[k] * (u[i + o] + u[i - o]);
        k += 1;
    }
    acc
}

/// Centred first derivative along one axis (antisymmetric weights).
#[inline(always)]
pub fn first_diff_axis(u: &[f32], i: usize, s: usize, w: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (k, &wk) in w.iter().enumerate() {
        let o = (k + 1) * s;
        acc += wk * (u[i + o] - u[i - o]);
    }
    acc
}

/// Centred first derivative, compile-time radius.
#[inline(always)]
pub fn first_diff_axis_r<const R: usize>(u: &[f32], i: usize, s: usize, w: &[f32; R]) -> f32 {
    let mut acc = 0.0f32;
    let mut k = 0;
    while k < R {
        let o = (k + 1) * s;
        acc += w[k] * (u[i + o] - u[i - o]);
        k += 1;
    }
    acc
}

/// Mixed second derivative `∂²/∂a∂b` at linear index `i` from the
/// composition of two centred first derivatives (strides `s1`, `s2`,
/// antisymmetric weights `w1`, `w2`). Used by the rotated TTI Laplacian
/// (paper Eq. 2), whose cross terms "increase the operation count
/// drastically": the footprint is the `(2r)²`-point outer product of the
/// two first-derivative stencils.
#[inline(always)]
pub fn cross_diff(u: &[f32], i: usize, s1: usize, s2: usize, w1: &[f32], w2: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (j, &wj) in w1.iter().enumerate() {
        let o1 = (j + 1) * s1;
        let mut inner = 0.0f32;
        for (k, &wk) in w2.iter().enumerate() {
            let o2 = (k + 1) * s2;
            inner += wk * ((u[i + o1 + o2] + u[i - o1 - o2]) - (u[i + o1 - o2] + u[i - o1 + o2]));
        }
        acc += wj * inner;
    }
    acc
}

/// Mixed second derivative, compile-time radius.
#[inline(always)]
pub fn cross_diff_r<const R: usize>(
    u: &[f32],
    i: usize,
    s1: usize,
    s2: usize,
    w1: &[f32; R],
    w2: &[f32; R],
) -> f32 {
    let mut acc = 0.0f32;
    let mut j = 0;
    while j < R {
        let o1 = (j + 1) * s1;
        let mut inner = 0.0f32;
        let mut k = 0;
        while k < R {
            let o2 = (k + 1) * s2;
            inner +=
                w2[k] * ((u[i + o1 + o2] + u[i - o1 - o2]) - (u[i + o1 - o2] + u[i - o1 + o2]));
            k += 1;
        }
        acc += w1[j] * inner;
        j += 1;
    }
    acc
}

/// Staggered first derivative evaluated at `i + ½` (forward).
#[inline(always)]
pub fn staggered_diff_fwd(u: &[f32], i: usize, s: usize, w: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (k, &wk) in w.iter().enumerate() {
        acc += wk * (u[i + (k + 1) * s] - u[i - k * s]);
    }
    acc
}

/// Staggered first derivative evaluated at `i − ½` (backward).
#[inline(always)]
pub fn staggered_diff_bwd(u: &[f32], i: usize, s: usize, w: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (k, &wk) in w.iter().enumerate() {
        acc += wk * (u[i + k * s] - u[i - (k + 1) * s]);
    }
    acc
}

/// Staggered forward derivative, compile-time radius.
#[inline(always)]
pub fn staggered_diff_fwd_r<const R: usize>(u: &[f32], i: usize, s: usize, w: &[f32; R]) -> f32 {
    let mut acc = 0.0f32;
    let mut k = 0;
    while k < R {
        acc += w[k] * (u[i + (k + 1) * s] - u[i - k * s]);
        k += 1;
    }
    acc
}

/// Staggered backward derivative, compile-time radius.
#[inline(always)]
pub fn staggered_diff_bwd_r<const R: usize>(u: &[f32], i: usize, s: usize, w: &[f32; R]) -> f32 {
    let mut acc = 0.0f32;
    let mut k = 0;
    while k < R {
        acc += w[k] * (u[i + k * s] - u[i - (k + 1) * s]);
        k += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sample a function on a 1-D line embedded in a padded slice and return
    /// (slice, center index).
    fn line(f: impl Fn(f64) -> f64, n: usize, h: f64) -> (Vec<f32>, usize) {
        let u: Vec<f32> = (0..n).map(|k| f(k as f64 * h) as f32).collect();
        (u, n / 2)
    }

    #[test]
    fn second_diff_quadratic_exact() {
        // u = x² ⇒ u'' = 2 everywhere, exactly representable at any order.
        let h = 0.5;
        let (u, c) = line(|x| x * x, 33, h);
        for order in [2, 4, 8, 12] {
            let w = AxisWeights::second_derivative(order, h as f32);
            let v = second_diff_axis(&u, c, 1, &w);
            assert!((v - 2.0).abs() < 1e-3, "order {order}: {v}");
        }
    }

    #[test]
    fn second_diff_convergence_with_order() {
        // u = sin(x): higher order must be more accurate at fixed h.
        let h = 0.2;
        let (u, c) = line(|x| x.sin(), 65, h);
        let x0 = (c as f64) * h;
        let exact = -(x0.sin()) as f32;
        let mut last_err = f32::INFINITY;
        for order in [2, 4, 8] {
            let w = AxisWeights::second_derivative(order, h as f32);
            let err = (second_diff_axis(&u, c, 1, &w) - exact).abs();
            assert!(err < last_err, "order {order} err {err} !< {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-5);
    }

    #[test]
    fn laplacian_matches_sum_of_axes() {
        // 3-D field on a small padded grid, compare composed vs per-axis.
        let (nx, ny, nz) = (9, 9, 9);
        let sx = ny * nz;
        let sy = nz;
        let h = 1.0f32;
        let mut u = vec![0.0f32; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    u[(x * ny + y) * nz + z] =
                        (x as f32).powi(2) * 0.3 + (y as f32).powi(2) * 0.5 + (z as f32).powi(2);
                }
            }
        }
        let w = AxisWeights::second_derivative(4, h);
        let i = (4 * ny + 4) * nz + 4;
        let lx = second_diff_axis(&u, i, sx, &w);
        let ly = second_diff_axis(&u, i, sy, &w);
        let lz = second_diff_axis(&u, i, 1, &w);
        let lap = laplacian_at(&u, i, sx, sy, 3.0 * w.center, &w.side, &w.side, &w.side);
        assert!((lap - (lx + ly + lz)).abs() < 1e-4);
        // Analytic: 2(0.3 + 0.5 + 1.0) = 3.6
        assert!((lap - 3.6).abs() < 1e-3, "{lap}");
    }

    #[test]
    fn const_generic_matches_dynamic() {
        let (u, c) = line(|x| (0.7 * x).cos() + x * x * 0.1, 65, 0.25);
        let w = AxisWeights::second_derivative(8, 0.25);
        let arr: [f32; 4] = w.side_array();
        let a = laplacian_at(&u, c, 8, 4, 3.0 * w.center, &w.side, &w.side, &w.side);
        let b = laplacian_at_r::<4>(&u, c, 8, 4, 3.0 * w.center, &arr, &arr, &arr);
        assert_eq!(a.to_bits(), b.to_bits(), "must be the same computation");
        let f1 = first_derivative_weights(8, 0.25);
        let f1a: [f32; 4] = f1.clone().try_into().unwrap();
        assert_eq!(
            first_diff_axis(&u, c, 1, &f1).to_bits(),
            first_diff_axis_r::<4>(&u, c, 1, &f1a).to_bits()
        );
        let sw = staggered_weights(8, 0.25);
        let swa: [f32; 4] = sw.clone().try_into().unwrap();
        assert_eq!(
            staggered_diff_fwd(&u, c, 1, &sw).to_bits(),
            staggered_diff_fwd_r::<4>(&u, c, 1, &swa).to_bits()
        );
        assert_eq!(
            staggered_diff_bwd(&u, c, 1, &sw).to_bits(),
            staggered_diff_bwd_r::<4>(&u, c, 1, &swa).to_bits()
        );
    }

    #[test]
    fn cross_diff_exact_on_product() {
        // f(x, y) = x·y embedded in a 3-D grid ⇒ ∂²f/∂x∂y = 1 exactly.
        let (nx, ny, nz) = (17, 17, 3);
        let (sx, sy) = (ny * nz, nz);
        let h = 0.5f32;
        let mut u = vec![0.0f32; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    u[(x * ny + y) * nz + z] = (x as f32 * h) * (y as f32 * h);
                }
            }
        }
        let i = (8 * ny + 8) * nz + 1;
        for order in [2, 4, 8] {
            let w = first_derivative_weights(order, h);
            let v = cross_diff(&u, i, sx, sy, &w, &w);
            assert!((v - 1.0).abs() < 1e-4, "order {order}: {v}");
        }
    }

    #[test]
    fn cross_diff_const_generic_matches_dynamic() {
        let (nx, ny, nz) = (17, 17, 17);
        let (sx, sy) = (ny * nz, nz);
        let mut u = vec![0.0f32; nx * ny * nz];
        for (k, v) in u.iter_mut().enumerate() {
            *v = ((k * 37) % 101) as f32 * 0.03 - 1.5;
        }
        let w = first_derivative_weights(8, 0.7);
        let wa: [f32; 4] = w.clone().try_into().unwrap();
        let i = (8 * ny + 8) * nz + 8;
        assert_eq!(
            cross_diff(&u, i, sx, 1, &w, &w).to_bits(),
            cross_diff_r::<4>(&u, i, sx, 1, &wa, &wa).to_bits()
        );
        assert_eq!(
            cross_diff(&u, i, sy, 1, &w, &w).to_bits(),
            cross_diff_r::<4>(&u, i, sy, 1, &wa, &wa).to_bits()
        );
    }

    #[test]
    fn cross_diff_vanishes_on_separable_quadratic() {
        // f = x² + y²: all mixed derivatives are zero.
        let (nx, ny, nz) = (17, 17, 3);
        let (sx, sy) = (ny * nz, nz);
        let mut u = vec![0.0f32; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    u[(x * ny + y) * nz + z] = (x * x + y * y) as f32;
                }
            }
        }
        let w = first_derivative_weights(4, 1.0);
        let i = (8 * ny + 8) * nz + 1;
        assert!(cross_diff(&u, i, sx, sy, &w, &w).abs() < 1e-4);
    }

    #[test]
    fn first_diff_linear_exact() {
        let h = 0.3;
        let (u, c) = line(|x| 3.0 * x + 1.0, 33, h);
        for order in [2, 4, 8, 12] {
            let w = first_derivative_weights(order, h as f32);
            let v = first_diff_axis(&u, c, 1, &w);
            assert!((v - 3.0).abs() < 1e-3, "order {order}: {v}");
        }
    }

    #[test]
    fn staggered_fwd_bwd_relationship() {
        // For u = x, both staggered derivatives are exactly 1.
        let h = 0.5;
        let (u, c) = line(|x| x, 33, h);
        for order in [2, 4, 8] {
            let w = staggered_weights(order, h as f32);
            let f = staggered_diff_fwd(&u, c, 1, &w);
            let b = staggered_diff_bwd(&u, c, 1, &w);
            assert!((f - 1.0).abs() < 1e-4, "fwd {f}");
            assert!((b - 1.0).abs() < 1e-4, "bwd {b}");
        }
    }

    #[test]
    fn staggered_bwd_is_shifted_fwd() {
        let (u, c) = line(|x| (x * 0.3).sin(), 65, 0.25);
        let w = staggered_weights(4, 0.25);
        // derivative at c − ½ computed backward from c equals forward from c−1.
        let b = staggered_diff_bwd(&u, c, 1, &w);
        let f = staggered_diff_fwd(&u, c - 1, 1, &w);
        assert!((b - f).abs() < 1e-6);
    }

    #[test]
    fn weights_scale_with_spacing() {
        let w1 = AxisWeights::second_derivative(4, 1.0);
        let w2 = AxisWeights::second_derivative(4, 2.0);
        assert!((w1.center / w2.center - 4.0).abs() < 1e-5);
        let f1 = first_derivative_weights(4, 1.0);
        let f2 = first_derivative_weights(4, 2.0);
        assert!((f1[0] / f2[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "radius mismatch")]
    fn side_array_checks_radius() {
        let w = AxisWeights::second_derivative(4, 1.0);
        let _: [f32; 3] = w.side_array();
    }
}
