//! Zero-offset-style reverse time migration (RTM) — the paper's motivating
//! application class ("full-waveform inversion (FWI) and reverse time
//! migration (RTM)", §I.C). A minimal single-shot imaging experiment:
//!
//! 1. **forward-model** a shot over a two-layer medium, recording the shot
//!    gather at surface receivers and snapshotting the source wavefield;
//! 2. **back-propagate** the recorded gather (time-reversed, injected at the
//!    receiver positions — receivers become off-the-grid *sources*, the
//!    duality at the heart of the paper's scheme);
//! 3. **cross-correlate** the two wavefield histories (the imaging
//!    condition) — energy focuses at the reflector.
//!
//! ```text
//! cargo run --release --example rtm_imaging
//! ```

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Array2, Array3, Domain, Model, Shape};
use tempest::sparse::SparsePoints;

fn main() {
    let n = 64;
    let every = 2; // snapshot stride
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let interface_frac = 0.55;
    let true_model = Model::two_layer(domain, 1500.0, 3500.0, interface_frac);
    // Migration runs in the smooth "background" model (no reflector).
    let smooth_model = Model::homogeneous(domain, 1500.0);

    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, 3500.0, 650.0)
        .with_f0(18.0)
        .with_boundary(8, 0.4);
    let nt = cfg.nt;
    println!("RTM demo: {n}³ grid, nt = {nt}, snapshot every {every} steps");

    let e = domain.extent();
    let shot = [0.5 * e[0] + 3.0, 0.5 * e[1] + 3.0, 0.06 * e[2]];
    let src = SparsePoints::new(&domain, vec![shot]);
    let rec = SparsePoints::receiver_line(&domain, 31, 0.06);
    let rec_pts = rec.clone();

    // --- 1. forward pass in the true model, recording the gather ---------
    let mut fwd = Acoustic::new(&true_model, cfg.clone(), src.clone(), Some(rec));
    let _ = fwd.run(&Execution::baseline());
    let gather = fwd.trace().unwrap();
    println!(
        "forward shot modelled; gather peak {:.3e}",
        gather.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    );

    // Source wavefield history in the *smooth* model (standard RTM); also
    // model the smooth-medium gather so the direct wave can be muted.
    let mut fwd_smooth =
        Acoustic::new(&smooth_model, cfg.clone(), src, Some(rec_pts.clone()));
    let s_snaps = fwd_smooth.run_recording(&Execution::baseline(), every);
    let direct = fwd_smooth.trace().unwrap();

    // --- 2. backward pass: receivers fire the time-reversed gather -------
    // Mute the direct arrival (subtract the smooth-model gather), then
    // time-reverse: only reflected energy is back-propagated.
    let mut reversed = Array2::<f32>::zeros(nt, rec_pts.len());
    for t in 0..nt {
        for r in 0..rec_pts.len() {
            let refl = gather.get(nt - 1 - t, r) - direct.get(nt - 1 - t, r);
            reversed.set(t, r, refl);
        }
    }
    let mut bwd = tempest::core::Acoustic::new_with_wavelets(
        &smooth_model,
        cfg,
        rec_pts,
        reversed,
        None,
    );
    let r_snaps = bwd.run_recording(&Execution::baseline(), every);
    println!(
        "backward pass done; {} snapshot pairs",
        s_snaps.len().min(r_snaps.len())
    );

    // --- 3. imaging condition: I(x) = Σ_t S(t, x) · R(T − t, x) ----------
    let mut image = Array3::<f32>::zeros(n, n, n);
    let pairs = s_snaps.len().min(r_snaps.len());
    for si in 0..pairs {
        let s = &s_snaps[si];
        let r = &r_snaps[pairs - 1 - si]; // receiver history is reversed
        let img = image.as_mut_slice();
        for (i, v) in img.iter_mut().enumerate() {
            *v += s.as_slice()[i] * r.as_slice()[i];
        }
    }

    // Depth profile of |image| (summed over x, y), normalised.
    let mut profile = vec![0.0f64; n];
    for (x, y, z, v) in image.iter_indexed() {
        let _ = (x, y);
        profile[z] += (v as f64).abs();
    }
    let pmax = profile.iter().cloned().fold(0.0, f64::max).max(1e-30);
    let z_interface = (interface_frac * n as f32) as usize;
    println!("\ndepth profile of the migrated image (# = energy):");
    for (z, p) in profile.iter().enumerate().step_by(2) {
        let bar = "#".repeat((40.0 * p / pmax) as usize);
        let mark = if z.abs_diff(z_interface) <= 1 { " <== true reflector" } else { "" };
        println!("z={z:>3} |{bar}{mark}");
    }
    let peak_z = profile
        .iter()
        .enumerate()
        // Ignore the shallow source/receiver imprint.
        .filter(|(z, _)| *z > n / 4)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    println!(
        "\nimage peak at z = {peak_z} (true reflector at z = {z_interface})"
    );
}
