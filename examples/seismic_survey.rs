//! A small seismic acquisition scenario — the workload class that motivates
//! the paper (§I: "source injections result in wavefields that must then be
//! measured at receivers"). A shot is fired into a layered medium and
//! recorded by a surface receiver line; we report first-break arrival times
//! per receiver and verify they match straight-ray travel times through the
//! top layer, then compare both schedules on the full shot.
//!
//! ```text
//! cargo run --release --example seismic_survey
//! ```
//!
//! With profiling compiled in and switched on, each schedule also prints a
//! per-phase profile and writes it to `target/profile/*.json`:
//!
//! ```text
//! TEMPEST_PROFILE=1 cargo run --release --example seismic_survey --features obs
//! ```
//!
//! Add `--trace` (or `TEMPEST_TRACE=1`) to also capture event-level traces:
//! each schedule prints the per-diagonal load-imbalance summary and writes
//! Chrome trace JSON under `results/trace/` (open in Perfetto).

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::obs;
use tempest::sparse::SparsePoints;

fn main() {
    if std::env::args().any(|a| a == "--trace") {
        obs::trace::set_enabled(true);
    }
    let n = 128;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let c_top = 1500.0f32;
    let model = Model::two_layer(domain, c_top, 3200.0, 0.6);

    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, model.vmax(), 320.0)
        .with_f0(12.0)
        .with_boundary(12, 0.3);
    let nt = cfg.nt;
    let dt = cfg.dt;

    // Shot at the surface centre, receivers along a surface line (all in
    // the top layer).
    let e = domain.extent();
    let shot = [0.5 * e[0] + 3.7, 0.5 * e[1] + 3.7, 0.08 * e[2]];
    let src = SparsePoints::new(&domain, vec![shot]);
    let rec = SparsePoints::receiver_line(&domain, 41, 0.08);
    let rec_coords: Vec<[f32; 3]> = rec.coords().to_vec();

    println!("shot at {shot:?}, {} receivers, nt = {nt}", rec_coords.len());
    let mut solver = Acoustic::new(&model, cfg, src, Some(rec));

    let (base, base_profile, base_trace, base_meta) = solver.run_traced(&Execution::baseline());
    let gather = solver.trace().unwrap();
    println!("baseline : {:>7.3} GPts/s", base.gpoints_per_s);
    let (wtb, wtb_profile, wtb_trace, wtb_meta) =
        solver.run_traced(&Execution::wavefront_default());
    println!(
        "wavefront: {:>7.3} GPts/s  speedup {:.2}x",
        wtb.gpoints_per_s,
        wtb.gpoints_per_s / base.gpoints_per_s
    );
    let (diag, diag_profile, diag_trace, diag_meta) =
        solver.run_traced(&Execution::wavefront_diagonal_default());
    println!(
        "wavefront-diag: {:>7.3} GPts/s  speedup {:.2}x",
        diag.gpoints_per_s,
        diag.gpoints_per_s / base.gpoints_per_s
    );
    let (dflow, dflow_profile, dflow_trace, dflow_meta) =
        solver.run_traced(&Execution::wavefront_dataflow_default());
    println!(
        "wavefront-dflow: {:>6.3} GPts/s  speedup {:.2}x",
        dflow.gpoints_per_s,
        dflow.gpoints_per_s / base.gpoints_per_s
    );
    let (dmnd, dmnd_profile, dmnd_trace, dmnd_meta) =
        solver.run_traced(&Execution::diamond_default());
    println!(
        "diamond  : {:>7.3} GPts/s  speedup {:.2}x",
        dmnd.gpoints_per_s,
        dmnd.gpoints_per_s / base.gpoints_per_s
    );

    // Head-to-head synchronisation cost: one barrier per anti-diagonal vs a
    // single join per sweep (dataflow and diamond both run barrier-free on
    // the dependency-counted substrate), so the barrier-wait share isolates
    // the scheduling discipline.
    if !diag_profile.is_empty() && !dflow_profile.is_empty() && !dmnd_profile.is_empty() {
        println!(
            "\nbarrier-wait share: diagonal {:>5.1}%  vs  dataflow {:>5.1}%  vs  diamond {:>5.1}%",
            100.0 * diag_profile.barrier_wait_share(),
            100.0 * dflow_profile.barrier_wait_share(),
            100.0 * dmnd_profile.barrier_wait_share()
        );
    }

    for (profile, trace, meta) in [
        (base_profile, base_trace, base_meta),
        (wtb_profile, wtb_trace, wtb_meta),
        (diag_profile, diag_trace, diag_meta),
        (dflow_profile, dflow_trace, dflow_meta),
        (dmnd_profile, dmnd_trace, dmnd_meta),
    ] {
        if profile.is_empty() {
            continue; // profiling off (or built without --features obs)
        }
        println!("\n{}", profile.render(&meta));
        match profile.write_json(&meta) {
            Ok(path) => println!("profile written to {}", path.display()),
            Err(err) => eprintln!("could not write profile JSON: {err}"),
        }
        if !trace.is_empty() {
            // Per-diagonal load balance next to the per-phase table, plus
            // the Perfetto-loadable event trace.
            println!("{}", obs::analysis::TraceAnalysis::from_trace(&trace).render());
            match trace.write_chrome_json(&meta) {
                Ok(path) => println!("trace written to {}", path.display()),
                Err(err) => eprintln!("could not write trace JSON: {err}"),
            }
        }
    }

    // First-break picking: earliest sample exceeding 2% of the trace peak.
    let peak = gather
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    let threshold = 0.02 * peak;
    // The Ricker wavelet is delayed by t0 = 1/f0.
    let t0 = 1.0 / 12.0f32;

    println!("\nreceiver   offset(m)   picked(ms)   ray(ms)");
    let mut checked = 0;
    for (r, rc) in rec_coords.iter().enumerate().step_by(8) {
        let dist = ((rc[0] - shot[0]).powi(2)
            + (rc[1] - shot[1]).powi(2)
            + (rc[2] - shot[2]).powi(2))
        .sqrt();
        let ray_ms = dist / c_top * 1e3;
        let pick = (0..nt).find(|&t| gather.get(t, r).abs() > threshold);
        if let Some(t) = pick {
            let picked_ms = (t as f32 * dt - t0).max(0.0) * 1e3;
            println!("{r:>8}   {dist:>9.1}   {picked_ms:>10.1}   {ray_ms:>7.1}");
            // First breaks within a wavelet period of the ray time.
            if ray_ms > 20.0 && picked_ms > 0.0 {
                let err = (picked_ms - ray_ms).abs();
                assert!(
                    err < 1000.0 / 12.0 * 1.5,
                    "receiver {r}: pick {picked_ms} ms vs ray {ray_ms} ms"
                );
                checked += 1;
            }
        } else {
            println!("{r:>8}   {dist:>9.1}   (no arrival)   {ray_ms:>7.1}");
        }
    }
    println!("\n{checked} first breaks validated against straight-ray travel times");
}
