//! The Devito-style symbolic workflow (paper §III-A Listing 1):
//! define the damped acoustic wave equation symbolically, `solve` for the
//! forward update, lower to an executable stencil plan, attach off-grid
//! source/receivers, print the generated loop nest, run — and cross-check
//! against the hand-optimised `tempest-core` propagator.
//!
//! ```text
//! cargo run --release --example dsl_acoustic
//! ```

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::dsl::operator::InjectScale;
use tempest::dsl::{solve, Context, DslOperator};
use tempest::grid::{Array3, Domain, Model, Shape};
use tempest::sparse::{ricker, SparsePoints};

fn main() {
    let n = 24;
    let so = 4;
    let nt = 16;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let c = 2000.0f32;

    // ---- symbolic definition (the paper's Listing 1 of §III-A) ----------
    let mut ctx = Context::new(domain);
    let u = ctx.time_function("u", 2, so);
    let m = ctx.parameter("m");

    let cfg = SimConfig::new(domain, so, EquationKind::Acoustic, c, 100.0)
        .with_nt(nt)
        .with_f0(30.0)
        .with_boundary(0, 0.0); // free propagation keeps the comparison exact
    ctx.set_dt(cfg.dt as f64);
    let dt = cfg.dt;

    // eq = m * u.dt2 - u.laplace ; update = Eq(u.forward, solve(eq, u.forward))
    let eq = m.x() * u.dt2() - u.laplace();
    let update = solve(&ctx, &eq, u).expect("wave equation is linear in u.forward");

    let m_id = m.id();
    let mut op = DslOperator::new(ctx, vec![update], nt);
    let shape = Shape::cube(n);
    op.set_parameter(m_id, Array3::full(shape.nx, shape.ny, shape.nz, 1.0 / (c * c)));

    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = SparsePoints::receiver_line(&domain, 5, 0.25);
    let wavelet = ricker(30.0, dt, nt);
    // src.inject(u.forward, expr = src * dt**2 / m)
    op.add_injection(u, &src, &wavelet, InjectScale::ConstOverParam(dt * dt, m_id));
    // d = rec.interpolate(u)
    let trace_idx = op.add_interpolation(u, &rec);

    println!("generated loop nest (Listing-1 structure):\n{}", op.pseudocode());

    op.run();
    let dsl_field = op.final_field(u.id());
    let dsl_trace = op.trace(trace_idx).clone();

    // ---- the hand-optimised propagator on the same problem --------------
    let model = Model::homogeneous(domain, c);
    let mut fast = Acoustic::new(&model, cfg, src, Some(rec));
    fast.run(&Execution::baseline().sequential());
    let fast_field = fast.final_field();
    let fast_trace = fast.trace().unwrap();

    let fdiff = dsl_field.max_abs_diff(&fast_field);
    let fscale = fast_field.max_abs().max(1e-30);
    println!(
        "wavefield: DSL-interpreted vs hand-optimised max diff {fdiff:.3e} \
         (peak {fscale:.3e}, {:.1e} relative)",
        fdiff / fscale
    );
    assert!(fdiff <= 1e-3 * fscale, "DSL and core kernels must agree");

    let mut tdiff = 0.0f32;
    let mut tscale = 0.0f32;
    for t in 0..nt {
        for r in 0..5 {
            tdiff = tdiff.max((dsl_trace.get(t, r) - fast_trace.get(t, r)).abs());
            tscale = tscale.max(fast_trace.get(t, r).abs());
        }
    }
    println!(
        "traces   : max diff {tdiff:.3e} (peak {tscale:.3e})",
    );
    assert!(tdiff <= 1e-3 * tscale.max(1e-30));
    println!("\nDSL semantics == optimised kernels ✓");

    // ---- automated temporal blocking from the symbolic spec -------------
    // The paper's future work (§V-B): skew, phases and the fused sparse
    // operators all derived automatically from the lowered kernel.
    op.run_wavefront(8, 8, 4);
    let wf_field = op.final_field(u.id());
    assert!(
        dsl_field.bit_equal(&wf_field),
        "automated WTB must be bitwise identical"
    );
    println!("automated wave-front temporal blocking (tile 8x8, t4) == classic run ✓ (bitwise)");
}
