//! Survey-scale shot orchestration through the async job queue — the
//! production shape of the workload the paper motivates (§I): many shots
//! into a shared model, each recorded at a receiver line, scheduled by
//! priority with live polling and cancellation.
//!
//! ```text
//! cargo run --release --example survey_service
//! ```
//!
//! Three surveys are submitted to a live [`SurveyService`]: a high-priority
//! production batch, a low-priority background sweep, and a speculative job
//! that is cancelled mid-flight. The example polls the queue like a client
//! would, then prints the terminal state, shot progress, and gather energy
//! of every job. With `--features obs` the shot counters are reported too.

use std::sync::Arc;

use tempest::core::config::EquationKind;
use tempest::core::SimConfig;
use tempest::grid::{Domain, Model, Shape};
use tempest::obs;
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{JobSpec, JobState, Survey, SurveyOptions, SurveyService};

fn build_survey(shots: usize, f0: f32) -> Arc<Survey> {
    let n = 48;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::two_layer(domain, 1500.0, 2800.0, 0.55);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, model.vmax(), 120.0)
        .with_f0(f0)
        .with_boundary(8, 0.3);
    let rec = SparsePoints::receiver_line(&domain, 16, 0.08);
    let mut s = Survey::new(model, cfg).with_receivers(rec);
    s.add_shot_line(shots, 0.08);
    Arc::new(s)
}

fn main() {
    obs::set_enabled(true);

    let svc = SurveyService::start();

    // A production batch (high priority), a background sweep (low), and a
    // speculative job we will cancel. Priorities order the queue; the
    // per-job thread budget caps how much of the fleet each one takes.
    let production = svc.submit(
        JobSpec::new(build_survey(4, 15.0))
            .with_priority(10)
            .with_opts(SurveyOptions {
                policy: Policy::Parallel,
                batch_size: 2,
                ..SurveyOptions::default()
            }),
    );
    let background = svc.submit(
        JobSpec::new(build_survey(3, 10.0))
            .with_priority(-5)
            .with_threads(1),
    );
    let speculative = svc.submit(JobSpec::new(build_survey(6, 20.0)).with_priority(0));
    println!("submitted: production={production} background={background} speculative={speculative}");

    // Cancel the speculative job. Depending on timing it is still queued
    // (cancelled immediately) or already running (cooperative cancel at the
    // next batch boundary) — either way it ends Cancelled with no gathers.
    let accepted = svc.cancel(speculative);
    println!("cancel(speculative) accepted: {accepted}");

    // Poll like a client: non-blocking status reads until all terminal.
    let jobs = [production, background, speculative];
    loop {
        let mut all_done = true;
        for id in jobs {
            let st = svc.poll(id).expect("job record");
            if !st.state.is_terminal() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    println!("\n job  prio  state      shots  error");
    for id in jobs {
        let st = svc.wait(id).expect("job record");
        println!(
            "  {:>2}  {:>4}  {:<9}  {}/{}  {}",
            st.id,
            st.priority,
            format!("{:?}", st.state),
            st.shots_done,
            st.shots_total,
            st.error.as_deref().unwrap_or("-"),
        );
        if st.state == JobState::Completed {
            let gathers = svc.take_gathers(id).expect("completed gathers");
            for (shot, g) in gathers.iter().enumerate() {
                let g = g.as_ref().expect("receivers attached");
                let energy: f64 =
                    g.as_slice().iter().map(|v| (*v as f64) * (*v as f64)).sum();
                let [nt, nrec] = g.dims();
                println!("       shot {shot}: gather {nt}x{nrec}, energy {energy:.3e}");
            }
        }
    }

    if obs::enabled() {
        let p = obs::snapshot();
        println!(
            "\nshot counters: started {}, completed {}",
            p.counter(obs::Counter::ShotStarted),
            p.counter(obs::Counter::ShotCompleted),
        );
    }
}
