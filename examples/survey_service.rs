//! Survey-scale shot orchestration through the async job queue — the
//! production shape of the workload the paper motivates (§I): many shots
//! into a shared model, each recorded at a receiver line, scheduled by
//! priority with live polling and cancellation.
//!
//! ```text
//! cargo run --release --example survey_service --features obs
//! # with the live telemetry endpoint (DESIGN.md §15):
//! TEMPEST_TELEMETRY=1 cargo run --release --example survey_service --features obs
//! curl http://127.0.0.1:9464/metrics
//! ```
//!
//! Three surveys are submitted to a live [`SurveyService`]: a high-priority
//! production batch, a low-priority background sweep, and a speculative job
//! that is cancelled mid-flight. The example polls the queue like a client
//! would — including the per-job progress/ETA gauges — then prints the
//! terminal state, shot progress, and gather energy of every job.
//!
//! With `TEMPEST_TELEMETRY` set the service also exports `/metrics`
//! (Prometheus text), `/jobs` (JSON) and `/healthz` over HTTP; the example
//! scrapes its own endpoint and validates both documents. Set
//! `TEMPEST_TELEMETRY=host:port` to choose the bind address, and
//! `TEMPEST_TELEMETRY_HOLD=<seconds>` to keep the process (and endpoint)
//! alive after the jobs drain so an external client can scrape it.
//! Without `TEMPEST_TELEMETRY` the sampler, endpoint and watchdog are
//! inert — the example asserts that.

use std::sync::Arc;

use tempest::core::config::EquationKind;
use tempest::core::operator::{KernelPath, Schedule, SparseMode};
use tempest::core::{Execution, SimConfig};
use tempest::grid::{Domain, Model, Shape};
use tempest::obs;
use tempest::obs::metrics::Gauge;
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::survey::{JobSpec, JobState, Survey, SurveyOptions, SurveyService};

fn build_survey(shots: usize, f0: f32) -> Arc<Survey> {
    let n = 48;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::two_layer(domain, 1500.0, 2800.0, 0.55);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, model.vmax(), 120.0)
        .with_f0(f0)
        .with_boundary(8, 0.3);
    let rec = SparsePoints::receiver_line(&domain, 16, 0.08);
    let mut s = Survey::new(model, cfg).with_receivers(rec);
    s.add_shot_line(shots, 0.08);
    Arc::new(s)
}

/// A small survey whose shot line sits at `shot_frac` — re-built at a
/// slightly different fraction it is "the same survey, sources nudged",
/// the canonical incremental-rework delta (DESIGN.md §16).
fn build_nudged_survey(shot_frac: f32) -> Arc<Survey> {
    let n = 32;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::two_layer(domain, 1500.0, 2800.0, 0.55);
    let cfg = SimConfig::new(domain, 4, EquationKind::Acoustic, model.vmax(), 60.0)
        .with_f0(15.0)
        .with_boundary(4, 0.3);
    let rec = SparsePoints::receiver_line(&domain, 8, 0.08);
    let mut s = Survey::new(model, cfg).with_receivers(rec);
    s.add_shot_line(2, shot_frac);
    Arc::new(s)
}

fn main() {
    obs::set_enabled(true);
    let telemetry = obs::metrics::telemetry_enabled();

    let svc = SurveyService::start();
    match svc.telemetry_addr() {
        Some(addr) => println!("telemetry endpoint: http://{addr}  (/metrics /jobs /healthz)"),
        None if telemetry => println!("telemetry on, endpoint unavailable (bind failed?)"),
        None => println!("telemetry off (set TEMPEST_TELEMETRY=1 for /metrics + /jobs + watchdog)"),
    }

    // A production batch (high priority), a background sweep (low), and a
    // speculative job we will cancel. Priorities order the queue; the
    // per-job thread budget caps how much of the fleet each one takes.
    let production = svc.submit(
        JobSpec::new(build_survey(4, 15.0))
            .with_priority(10)
            .with_opts(SurveyOptions {
                policy: Policy::Parallel,
                batch_size: 2,
                ..SurveyOptions::default()
            }),
    );
    let background = svc.submit(
        JobSpec::new(build_survey(3, 10.0))
            .with_priority(-5)
            .with_threads(1),
    );
    let speculative = svc.submit(JobSpec::new(build_survey(6, 20.0)).with_priority(0));
    println!("submitted: production={production} background={background} speculative={speculative}");

    // Cancel the speculative job. Depending on timing it is still queued
    // (cancelled immediately) or already running (cooperative cancel at the
    // next batch boundary) — either way it ends Cancelled with no gathers.
    let accepted = svc.cancel(speculative);
    println!("cancel(speculative) accepted: {accepted}");

    // Poll like a client: non-blocking status reads until all terminal,
    // reporting the live progress/ETA gauges along the way.
    let jobs = [production, background, speculative];
    let mut ticks = 0u32;
    loop {
        let mut all_done = true;
        for id in jobs {
            let st = svc.poll(id).expect("job record");
            if !st.state.is_terminal() {
                all_done = false;
                if ticks.is_multiple_of(10) && st.state == JobState::Running {
                    println!(
                        "  job {id}: {:>5.1}% done, eta {}",
                        100.0 * st.progress,
                        st.eta_s.map_or("?".into(), |e| format!("{e:.2}s")),
                    );
                }
            }
        }
        if all_done {
            break;
        }
        ticks += 1;
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    println!("\n job  prio  state      shots  error");
    for id in jobs {
        let st = svc.wait(id).expect("job record");
        println!(
            "  {:>2}  {:>4}  {:<9}  {}/{}  {}",
            st.id,
            st.priority,
            format!("{:?}", st.state),
            st.shots_done,
            st.shots_total,
            st.error.as_deref().unwrap_or("-"),
        );
        if st.state == JobState::Completed {
            let gathers = svc.take_gathers(id).expect("completed gathers");
            for (shot, g) in gathers.iter().enumerate() {
                let g = g.as_ref().expect("receivers attached");
                let energy: f64 =
                    g.as_slice().iter().map(|v| (*v as f64) * (*v as f64)).sum();
                let [nt, nrec] = g.dims();
                println!("       shot {shot}: gather {nt}x{nrec}, energy {energy:.3e}");
            }
        }
    }

    // Interactive rework: submit a survey, then resubmit it with the shot
    // line nudged. Fused-sparse shots under a tile-plannable schedule route
    // through the incremental engine (DESIGN.md §16), and the service lends
    // one TileCache across jobs — so the rerun restores every tile outside
    // the nudge's causal cone instead of recomputing it.
    let inc_opts = SurveyOptions {
        exec: Execution {
            schedule: Schedule::SpaceBlocked {
                block_x: 8,
                block_y: 8,
            },
            sparse: SparseMode::FusedCompressed,
            policy: Policy::Parallel,
            kernel: KernelPath::default(),
        },
        ..SurveyOptions::default()
    };
    let cold = svc.submit(JobSpec::new(build_nudged_survey(0.08)).with_opts(inc_opts.clone()));
    svc.wait(cold);
    let before = svc.tile_cache().map(|c| c.stats());
    let warm = svc.submit(JobSpec::new(build_nudged_survey(0.085)).with_opts(inc_opts));
    svc.wait(warm);
    match (before, svc.tile_cache().map(|c| c.stats())) {
        (Some(b), Some(a)) => {
            let restored = a.hits - b.hits;
            assert!(restored > 0, "nudged rerun restored no tiles from the service cache");
            println!(
                "\nnudged-source rerun: {restored} tiles restored bitwise from the \
                 service cache ({} entries / {} KiB, lifetime hit rate {:.1}%)",
                a.entries,
                a.bytes / 1024,
                a.hit_rate_pct(),
            );
        }
        _ => println!("\ntile cache disabled (TEMPEST_CACHE_MB=0): rerun recomputed everything"),
    }

    if obs::enabled() {
        let p = obs::snapshot();
        println!(
            "\nshot counters: started {}, completed {}",
            p.counter(obs::Counter::ShotStarted),
            p.counter(obs::Counter::ShotCompleted),
        );
    }

    if let Some(addr) = svc.telemetry_addr() {
        // Scrape our own endpoint and validate both documents end-to-end:
        // the exposition-format checker for /metrics, a JSON parse for
        // /jobs. This is exactly what the CI telemetry job relies on.
        let (code, metrics) = obs::serve::http_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(code, 200, "GET /metrics -> {code}");
        obs::serve::validate_exposition(&metrics).expect("valid Prometheus exposition");
        let jobs_doc = {
            let (code, body) = obs::serve::http_get(addr, "/jobs").expect("scrape /jobs");
            assert_eq!(code, 200, "GET /jobs -> {code}");
            obs::json::Value::parse(&body).expect("valid /jobs JSON")
        };
        let njobs = jobs_doc.get("jobs").and_then(|v| v.as_arr()).map_or(0, |a| a.len());
        println!(
            "self-scrape ok: /metrics {} lines (valid exposition), /jobs {} jobs, \
             heartbeats {}, completed gauge {}",
            metrics.lines().count(),
            njobs,
            obs::metrics::heartbeats(),
            obs::metrics::gauge(Gauge::CompletedJobs),
        );

        if let Ok(hold) = std::env::var("TEMPEST_TELEMETRY_HOLD") {
            let secs: u64 = hold.parse().unwrap_or(30);
            println!("holding endpoint open for {secs}s (TEMPEST_TELEMETRY_HOLD) …");
            std::thread::sleep(std::time::Duration::from_secs(secs));
        }
    } else {
        // Telemetry off: the sampler, endpoint and watchdog must be inert —
        // no heartbeats recorded, every gauge at zero.
        assert_eq!(obs::metrics::heartbeats(), 0, "heartbeats without telemetry");
        for g in Gauge::ALL {
            assert_eq!(obs::metrics::gauge(g), 0, "gauge {} without telemetry", g.name());
        }
        println!("telemetry off: no heartbeats, all gauges zero (sampler/endpoint/watchdog inert)");
    }
}
