//! Quickstart: model an acoustic wave from one off-the-grid source, measure
//! it at off-grid receivers, and run the same simulation under both
//! schedules — the paper's baseline (spatial blocking + classic sparse
//! operators) and wave-front temporal blocking with precomputed, fused
//! sparse operators.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::sparse::SparsePoints;

fn main() {
    // A 96³ grid at 10 m spacing — ~1 km³ of two-layer "subsurface".
    let domain = Domain::uniform(Shape::cube(96), 10.0);
    let model = Model::two_layer(domain, 1500.0, 3000.0, 0.5);

    // CFL-stable timestep for 300 ms of propagation (paper §IV.B recipe).
    let cfg = SimConfig::new(domain, 8, EquationKind::Acoustic, model.vmax(), 300.0);
    println!(
        "grid {:?}, dt = {:.3} ms, nt = {}",
        domain.shape().dims(),
        cfg.dt * 1e3,
        cfg.nt
    );

    // One source just off the grid near the centre; a line of receivers
    // near the surface (Fig. 3 of the paper).
    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = SparsePoints::receiver_line(&domain, 31, 0.1);
    let mut solver = Acoustic::new(&model, cfg, src, Some(rec));

    // Baseline: per-timestep spatial blocking, classic sparse ops.
    let base = solver.run(&Execution::baseline());
    let trace_base = solver.trace().unwrap();
    println!(
        "baseline : {:>8.3} GPts/s  ({:.2?})",
        base.gpoints_per_s, base.elapsed
    );

    // Wave-front temporal blocking with the precomputation scheme.
    let wtb = solver.run(&Execution::wavefront_default());
    let trace_wtb = solver.trace().unwrap();
    println!(
        "wavefront: {:>8.3} GPts/s  ({:.2?})  speedup {:.2}x",
        wtb.gpoints_per_s,
        wtb.elapsed,
        wtb.gpoints_per_s / base.gpoints_per_s
    );

    // Same physics, different schedule: the recorded shot gathers agree.
    let mut max_diff = 0.0f32;
    let mut max_amp = 0.0f32;
    for i in 0..trace_base.len() {
        max_diff = max_diff.max((trace_base.as_slice()[i] - trace_wtb.as_slice()[i]).abs());
        max_amp = max_amp.max(trace_base.as_slice()[i].abs());
    }
    println!(
        "traces: peak amplitude {max_amp:.3e}, max schedule difference {max_diff:.3e} \
         ({:.1e} relative)",
        max_diff / max_amp.max(1e-30)
    );
    assert!(max_diff <= 1e-4 * max_amp, "schedules must agree");

    // Print a tiny ASCII seismogram of the centre receiver.
    let nt = trace_base.dims()[0];
    let rmid = trace_base.dims()[1] / 2;
    println!("\ncentre-receiver trace (one char per 4 steps):");
    let mut line = String::new();
    for t in (0..nt).step_by(4) {
        let v = trace_base.get(t, rmid) / max_amp.max(1e-30);
        line.push(match v {
            v if v > 0.5 => '#',
            v if v > 0.1 => '+',
            v if v < -0.5 => '=',
            v if v < -0.1 => '-',
            _ => '.',
        });
    }
    println!("{line}");
}
