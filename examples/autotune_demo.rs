//! Auto-tuning demo (paper §IV.C / Table I): sweep tile/block shapes for
//! wave-front temporal blocking of the acoustic propagator and print the
//! ranking. Shows why tuning matters — the spread between best and worst
//! candidate is often larger than the blocking gain itself.
//!
//! ```text
//! cargo run --release --example autotune_demo
//! ```
//!
//! With profiling compiled in and switched on, the sweep also records each
//! candidate's barrier-wait share and uses it to break near-ties between
//! slab-ordered and diagonal-parallel shapes:
//!
//! ```text
//! TEMPEST_PROFILE=1 cargo run --release --example autotune_demo --features obs
//! ```
//!
//! Add `--trace` (or `TEMPEST_TRACE=1`) to trace the final tuned run: the
//! per-diagonal load-imbalance summary prints next to the comparison and
//! the Chrome trace JSON lands under `results/trace/`.

use tempest::core::operator::{KernelPath, Schedule, SparseMode};
use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::tiling::{
    autotune_measured, autotune::default_candidates, with_diagonal_variants, Candidate, Measurement,
};

/// Schedule for a candidate: slab-ordered or diagonal-parallel wave-front,
/// per its `diagonal` flag.
fn schedule_of(c: &Candidate) -> Schedule {
    if c.diagonal {
        Schedule::WavefrontDiagonal {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else {
        Schedule::Wavefront {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--trace") {
        tempest::obs::trace::set_enabled(true);
    }
    let n = 128;
    let nt = 16;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::random(domain, 1500.0, 3000.0, 7);
    let cfg = SimConfig::new(domain, 8, EquationKind::Acoustic, 3000.0, 200.0).with_nt(nt);
    let src = SparsePoints::single_center(&domain, 0.37);
    let mut solver = Acoustic::new(&model, cfg, src, None);

    // Each tile geometry is tried under both wave-front executors
    // (slab-ordered and diagonal-parallel — "/ diag" in the ranking).
    let cands = with_diagonal_variants(&default_candidates(n, n, &[4, 8, 16]));
    println!(
        "sweeping {} candidates on a {n}³ grid, {nt} steps each…\n",
        cands.len()
    );

    // Candidates within 5% of the fastest are ranked by measured
    // barrier-wait share (when telemetry is recorded) — wall time alone
    // cannot separate slab-ordered from diagonal-parallel shapes on short
    // tuning runs.
    let result = autotune_measured(
        &cands,
        |c| {
            let exec = Execution {
                schedule: schedule_of(c),
                sparse: SparseMode::FusedCompressed,
                policy: Policy::default(),
                kernel: KernelPath::default(),
            };
            let (stats, profile, _) = solver.run_profiled(&exec);
            Measurement {
                time: stats.elapsed,
                barrier_share: if profile.is_empty() {
                    None
                } else {
                    Some(profile.barrier_wait_share())
                },
            }
        },
        0.05,
    );

    let share_col = |m: &Measurement| {
        m.barrier_share
            .map(|s| format!("{:>5.1}%", s * 100.0))
            .unwrap_or_else(|| "    —".into())
    };

    // Ranking table.
    let mut ranked = result.all.clone();
    ranked.sort_by_key(|(_, m)| m.time);
    println!("rank  candidate                       time      barrier-wait");
    for (i, (c, m)) in ranked.iter().take(8).enumerate() {
        println!("{:>4}  {c:<30}  {:>8.3?}  {}", i + 1, m.time, share_col(m));
    }
    println!("   …");
    let (wc, wm) = ranked.last().unwrap();
    println!("last  {wc:<30}  {:>8.3?}  {}", wm.time, share_col(wm));

    println!(
        "\nbest: {}  ({:.3?}, barrier-wait {}); worst is {:.2}x slower",
        result.best,
        result.best_measurement.time,
        share_col(&result.best_measurement),
        wm.time.as_secs_f64() / result.best_measurement.time.as_secs_f64()
    );

    // Compare the tuned schedule against the baseline.
    let base = solver.run(&Execution::baseline());
    let tuned_exec = Execution {
        schedule: schedule_of(&result.best),
        sparse: SparseMode::FusedCompressed,
        policy: Policy::default(),
        kernel: KernelPath::default(),
    };
    let (wtb, _profile, trace, meta) = solver.run_traced(&tuned_exec);
    println!(
        "\nbaseline {:.3} GPts/s → tuned WTB {:.3} GPts/s ({:.2}x)",
        base.gpoints_per_s,
        wtb.gpoints_per_s,
        wtb.gpoints_per_s / base.gpoints_per_s
    );

    // With tracing on, show how well the tuned schedule balances its
    // diagonals — the signal behind the barrier-share tie-breaker above.
    if !trace.is_empty() {
        println!("\n{}", tempest::obs::analysis::TraceAnalysis::from_trace(&trace).render());
        match trace.write_chrome_json(&meta) {
            Ok(path) => println!("trace written to {}", path.display()),
            Err(err) => eprintln!("could not write trace JSON: {err}"),
        }
    }
}
