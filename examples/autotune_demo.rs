//! Auto-tuning demo (paper §IV.C / Table I): sweep tile/block shapes for
//! wave-front temporal blocking of the acoustic propagator and print the
//! ranking. Shows why tuning matters — the spread between best and worst
//! candidate is often larger than the blocking gain itself.
//!
//! ```text
//! cargo run --release --example autotune_demo
//! ```
//!
//! With profiling compiled in and switched on, the sweep also records each
//! candidate's barrier-wait share and uses it to break near-ties between
//! slab-ordered and diagonal-parallel shapes:
//!
//! ```text
//! TEMPEST_PROFILE=1 cargo run --release --example autotune_demo --features obs
//! ```
//!
//! Add `--trace` (or `TEMPEST_TRACE=1`) to trace the final tuned run: the
//! per-diagonal load-imbalance summary prints next to the comparison and
//! the Chrome trace JSON lands under `results/trace/`.

use tempest::core::operator::{KernelPath, Schedule, SparseMode};
use tempest::core::config::EquationKind;
use tempest::core::{Acoustic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, Model, Shape};
use tempest::par::Policy;
use tempest::sparse::SparsePoints;
use tempest::tiling::{
    autotune_measured, autotune::default_candidates, with_diagonal_variants, with_diamond_variants,
    Candidate, Measurement,
};

/// Schedule for a candidate: slab-ordered, diagonal-parallel,
/// dependency-driven dataflow, or diamond, per its
/// `diagonal`/`dataflow`/`diamond` flags. Diamond candidates reuse `tile_x`
/// as the diamond base width and `tile_y` as the cross-axis window.
fn schedule_of(c: &Candidate) -> Schedule {
    if let Some(axis) = c.diamond {
        Schedule::Diamond {
            width: c.tile_x,
            tile_t: c.tile_t,
            tile_c: c.tile_y,
            axis,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else if c.dataflow {
        Schedule::WavefrontDataflow {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else if c.diagonal {
        Schedule::WavefrontDiagonal {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    } else {
        Schedule::Wavefront {
            tile_x: c.tile_x,
            tile_y: c.tile_y,
            tile_t: c.tile_t,
            block_x: c.block_x,
            block_y: c.block_y,
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--trace") {
        tempest::obs::trace::set_enabled(true);
    }
    let n = 128;
    let nt = 16;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let model = Model::random(domain, 1500.0, 3000.0, 7);
    let cfg = SimConfig::new(domain, 8, EquationKind::Acoustic, 3000.0, 200.0).with_nt(nt);
    let src = SparsePoints::single_center(&domain, 0.37);
    let mut solver = Acoustic::new(&model, cfg, src, None);

    // Each tile geometry is tried under all three wave-front executors —
    // slab-ordered, diagonal-parallel ("/ diag") and dependency-driven
    // dataflow ("/ dflow") — plus the diamond schedule ("/ dmnd-x",
    // "/ dmnd-y") for every geometry whose tile width is a legal diamond
    // base width at this stencil radius. Same bases, no duplicates.
    let radius = 4; // space order 8
    let base = default_candidates(n, n, &[4, 8, 16]);
    let mut cands = with_diagonal_variants(&base);
    cands.extend(base.iter().map(|c| c.with_dataflow()));
    cands.extend(
        with_diamond_variants(&base, radius, 1)
            .into_iter()
            .filter(|c| c.diamond.is_some()),
    );
    println!(
        "sweeping {} candidates on a {n}³ grid, {nt} steps each…\n",
        cands.len()
    );

    // Candidates within 5% of the fastest are ranked by measured
    // barrier-wait share (when telemetry is recorded) — wall time alone
    // cannot separate slab-ordered from diagonal-parallel shapes on short
    // tuning runs.
    let result = autotune_measured(
        &cands,
        |c| {
            let exec = Execution {
                schedule: schedule_of(c),
                sparse: SparseMode::FusedCompressed,
                policy: Policy::default(),
                kernel: KernelPath::default(),
            };
            let (stats, profile, _) = solver.run_profiled(&exec);
            Measurement {
                time: stats.elapsed,
                barrier_share: if profile.is_empty() {
                    None
                } else {
                    Some(profile.barrier_wait_share())
                },
            }
        },
        0.05,
    );

    let share_col = |m: &Measurement| {
        m.barrier_share
            .map(|s| format!("{:>5.1}%", s * 100.0))
            .unwrap_or_else(|| "    —".into())
    };

    // Ranking table.
    let mut ranked = result.all.clone();
    ranked.sort_by_key(|(_, m)| m.time);
    println!("rank  candidate                       time      barrier-wait");
    for (i, (c, m)) in ranked.iter().take(8).enumerate() {
        println!("{:>4}  {c:<30}  {:>8.3?}  {}", i + 1, m.time, share_col(m));
    }
    println!("   …");
    let (wc, wm) = ranked.last().unwrap();
    println!("last  {wc:<30}  {:>8.3?}  {}", wm.time, share_col(wm));

    println!(
        "\nbest: {}  ({:.3?}, barrier-wait {}); worst is {:.2}x slower",
        result.best,
        result.best_measurement.time,
        share_col(&result.best_measurement),
        wm.time.as_secs_f64() / result.best_measurement.time.as_secs_f64()
    );

    // Compare the tuned schedule against the baseline.
    let base = solver.run(&Execution::baseline());
    let tuned_exec = Execution {
        schedule: schedule_of(&result.best),
        sparse: SparseMode::FusedCompressed,
        policy: Policy::default(),
        kernel: KernelPath::default(),
    };
    let (wtb, _profile, trace, meta) = solver.run_traced(&tuned_exec);
    println!(
        "\nbaseline {:.3} GPts/s → tuned WTB {:.3} GPts/s ({:.2}x)",
        base.gpoints_per_s,
        wtb.gpoints_per_s,
        wtb.gpoints_per_s / base.gpoints_per_s
    );

    // With tracing on, show how well the tuned schedule balances its
    // diagonals — the signal behind the barrier-share tie-breaker above.
    if !trace.is_empty() {
        println!("\n{}", tempest::obs::analysis::TraceAnalysis::from_trace(&trace).render());
        match trace.write_chrome_json(&meta) {
            Ok(path) => println!("trace written to {}", path.display()),
            Err(err) => eprintln!("could not write trace JSON: {err}"),
        }
    }

    // Same tile geometry, barrier discipline compared head-to-head: one
    // barrier per anti-diagonal (diagonal executor) vs one join per sweep
    // (dataflow executor). With profiling on, the barrier-wait share is the
    // synchronisation cost each discipline actually paid.
    let geometry = result.best;
    let run_share = |solver: &mut Acoustic, c: &Candidate| {
        let exec = Execution {
            schedule: schedule_of(c),
            sparse: SparseMode::FusedCompressed,
            policy: Policy::default(),
            kernel: KernelPath::default(),
        };
        let (stats, profile, _) = solver.run_profiled(&exec);
        let share = (!profile.is_empty()).then(|| profile.barrier_wait_share());
        (stats, share)
    };
    let (dg_stats, dg_share) = run_share(&mut solver, &geometry.with_diagonal());
    let (df_stats, df_share) = run_share(&mut solver, &geometry.with_dataflow());
    let pct = |s: Option<f64>| s.map(|v| format!("{:>5.1}%", v * 100.0)).unwrap_or("    —".into());
    println!("\nbarrier discipline at the tuned geometry ({geometry}):");
    println!(
        "  diagonal (barrier per anti-diagonal)  {:>8.3?}  barrier-wait {}",
        dg_stats.elapsed,
        pct(dg_share)
    );
    println!(
        "  dataflow (single join per sweep)      {:>8.3?}  barrier-wait {}",
        df_stats.elapsed,
        pct(df_share)
    );
    // Diamond shares the single-join discipline; it only joins the
    // comparison when the tuned tile width is a legal diamond base width.
    match with_diamond_variants(&[geometry], radius, 1)
        .into_iter()
        .find(|c| c.diamond.is_some())
    {
        Some(dm) => {
            let (dm_stats, dm_share) = run_share(&mut solver, &dm);
            println!(
                "  diamond  (single join per sweep)      {:>8.3?}  barrier-wait {}",
                dm_stats.elapsed,
                pct(dm_share)
            );
        }
        None => println!(
            "  diamond: tile width {} is not a legal diamond base width at \
             radius {radius}, tile_t {} (needs a multiple of 2·tile_t with \
             width/(2·tile_t) ≥ radius)",
            geometry.tile_x, geometry.tile_t
        ),
    }
}
