//! Elastic velocity–stress propagation (paper §III-C): nine coupled
//! wavefields, first order in time, staggered grid, two update phases per
//! step. Demonstrates the P- and S-wave speeds of the medium and the
//! two-phase wave-front schedule (Fig. 8b).
//!
//! ```text
//! cargo run --release --example elastic_demo
//! ```

use tempest::core::config::EquationKind;
use tempest::core::{Elastic, Execution, SimConfig, WaveSolver};
use tempest::grid::{Domain, ElasticModel, Shape};
use tempest::sparse::SparsePoints;

fn main() {
    let n = 96;
    let domain = Domain::uniform(Shape::cube(n), 10.0);
    let (vp, vs, rho) = (3000.0f32, 1400.0f32, 2200.0f32);
    let model = ElasticModel::homogeneous(domain, vp, vs, rho);
    println!(
        "elastic medium: vp = {vp} m/s, vs = {vs} m/s, rho = {rho} kg/m³ \
         (λ = {:.2e}, μ = {:.2e})",
        model.lam.get(0, 0, 0),
        model.mu.get(0, 0, 0)
    );

    let cfg = SimConfig::new(domain, 4, EquationKind::Elastic, vp, 140.0)
        .with_f0(18.0)
        .with_boundary(10, 0.3);
    println!("dt = {:.3} ms, nt = {}", cfg.dt * 1e3, cfg.nt);
    let dt = cfg.dt;
    let nt = cfg.nt;

    let src = SparsePoints::single_center(&domain, 0.37);
    let rec = SparsePoints::receiver_line(&domain, 25, 0.15);
    let rec_coords = rec.coords().to_vec();
    let center = domain.center();
    let mut solver = Elastic::new(&model, cfg, src, Some(rec));

    let base = solver.run(&Execution::baseline());
    println!("baseline : {:>7.3} GPts/s", base.gpoints_per_s);
    let wtb = solver.run(&Execution::wavefront_default());
    println!(
        "wavefront: {:>7.3} GPts/s  speedup {:.2}x \
         (two virtual steps per timestep — Fig. 8b skew)",
        wtb.gpoints_per_s,
        wtb.gpoints_per_s / base.gpoints_per_s
    );

    // P-wave arrival check on the vz gather: the explosive source radiates
    // a P wave at vp; the first energy at each receiver should arrive no
    // earlier than the P travel time.
    let gather = solver.trace().unwrap();
    let peak = gather
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    let t0 = 1.0 / 18.0f32; // wavelet delay
    println!("\nreceiver   dist(m)   P-ray(ms)   first energy(ms)");
    for (r, rc) in rec_coords.iter().enumerate().step_by(6) {
        let dist = ((rc[0] - center[0]).powi(2)
            + (rc[1] - center[1]).powi(2)
            + (rc[2] - center[2]).powi(2))
        .sqrt();
        let p_ms = dist / vp * 1e3;
        let pick = (0..nt).find(|&t| gather.get(t, r).abs() > 0.02 * peak);
        match pick {
            Some(t) => {
                let ms = ((t as f32) * dt - t0).max(0.0) * 1e3;
                println!("{r:>8}   {dist:>7.1}   {p_ms:>9.1}   {ms:>16.1}");
            }
            None => println!("{r:>8}   {dist:>7.1}   {p_ms:>9.1}   (quiet)"),
        }
    }

    let f = solver.final_field();
    println!(
        "\nfinal vz: max |v| = {:.3e} m/s over {} grid points",
        f.max_abs(),
        f.len()
    );
}
