#!/bin/bash
# Regenerate every paper table/figure reproduction (see EXPERIMENTS.md).
# Expect ~30-60 minutes on one core at the default 256³ size; pass
# e.g. SIZE=128 for a quick pass or SIZE=512 for paper scale.
set -e
cd "$(dirname "$0")/.."
SIZE="${SIZE:-256}"
NT="${NT:-24}"

cargo build --release -p tempest-bench

./target/release/figure9  --size "$SIZE" --nt "$NT" | tee results_figure9.txt
./target/release/figure10 --size "$SIZE" --nt 16    | tee results_figure10.txt
./target/release/figure11 --size "$SIZE" --nt 16    | tee results_figure11.txt
./target/release/ablation --size "$SIZE" --nt 16    | tee results_ablation.txt
# Table I sweeps dozens of candidates; a smaller grid keeps it tractable.
./target/release/table1   --size 128 --nt 16        | tee results_table1.txt
echo "all experiments done"
